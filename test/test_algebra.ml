open Tdp_core
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred
module Optimize = Tdp_algebra.Optimize
module Database = Tdp_store.Database
module Value = Tdp_store.Value
open Helpers

let fig1 = Tdp_paper.Fig1.schema

let emp_db () =
  let db = Database.create fig1 in
  let mk ssn dob rate hrs =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int ssn);
          (at "date_of_birth", Value.Date dob);
          (at "pay_rate", Value.Float rate);
          (at "hrs_worked", Value.Float hrs)
        ]
  in
  let e1 = mk 1 1970 50.0 10.0 in
  let e2 = mk 2 1990 60.0 20.0 in
  let e3 = mk 3 1960 70.0 30.0 in
  (db, [ e1; e2; e3 ])

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let test_pred_attrs_and_check () =
  let p =
    Pred.And
      ( Pred.cmp (at "ssn") Pred.Eq (Body.Int 1),
        Pred.Not (Pred.cmp (at "pay_rate") Pred.Gt (Body.Float 10.0)) )
  in
  Alcotest.(check int) "two attrs" 2 (Attr_name.Set.cardinal (Pred.attrs p));
  Pred.check_exn (Schema.hierarchy fig1) (ty "Employee") p;
  match Pred.check_exn (Schema.hierarchy fig1) (ty "Person") p with
  | exception Error.E (Attribute_not_available _) -> ()
  | _ -> Alcotest.fail "pay_rate is not available at Person"

let test_pred_typing () =
  let h = Schema.hierarchy fig1 in
  (* ordering a string attribute is rejected *)
  (match
     Pred.check_exn h (ty "Person") (Pred.cmp (at "name") Pred.Lt (Body.String "z"))
   with
  | exception Error.E (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "ordering on strings must fail");
  (* equality on strings is fine *)
  Pred.check_exn h (ty "Person") (Pred.cmp (at "name") Pred.Eq (Body.String "z"));
  (* int literal against a date attribute is fine (year semantics) *)
  Pred.check_exn h (ty "Person")
    (Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1980));
  (* kind mismatch is rejected *)
  match
    Pred.check_exn h (ty "Person") (Pred.cmp (at "ssn") Pred.Eq (Body.String "x"))
  with
  | exception Error.E (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "string literal against int attribute must fail"

let test_compare_values () =
  let open Tdp_store.Value in
  let chk name b = Alcotest.(check bool) name true b in
  (* op_holds covers every operator over a comparison result *)
  chk "eq" (Pred.op_holds Pred.Eq 0);
  chk "ne" (Pred.op_holds Pred.Ne 1);
  chk "lt" (Pred.op_holds Pred.Lt (-1));
  chk "le eq" (Pred.op_holds Pred.Le 0);
  chk "gt" (Pred.op_holds Pred.Gt 1);
  chk "ge eq" (Pred.op_holds Pred.Ge 0);
  chk "not lt" (not (Pred.op_holds Pred.Lt 1));
  (* equality / inequality across value kinds *)
  chk "int eq" (Pred.compare_values Pred.Eq (Int 3) (Int 3));
  chk "int ne" (Pred.compare_values Pred.Ne (Int 3) (Int 4));
  chk "string eq" (Pred.compare_values Pred.Eq (String "a") (String "a"));
  chk "bool ne" (Pred.compare_values Pred.Ne (Bool true) (Bool false));
  chk "null eq null" (Pred.compare_values Pred.Eq Null Null);
  chk "null ne int" (Pred.compare_values Pred.Ne Null (Int 0));
  (* numeric ordering, including mixed int/float/date *)
  chk "int lt" (Pred.compare_values Pred.Lt (Int 3) (Int 4));
  chk "float ge" (Pred.compare_values Pred.Ge (Float 2.5) (Float 2.5));
  chk "int vs float" (Pred.compare_values Pred.Le (Int 2) (Float 2.5));
  chk "date gt" (Pred.compare_values Pred.Gt (Date 1980) (Date 1975));
  (* ordering on non-numeric operands is false, never a crash *)
  chk "string lt false" (not (Pred.compare_values Pred.Lt (String "a") (String "b")));
  chk "null le false" (not (Pred.compare_values Pred.Le Null (Int 1)))

let test_pred_eval () =
  let db, oids = emp_db () in
  let old = Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1975) in
  let matching = List.filter (fun o -> Pred.eval db o old) oids in
  Alcotest.(check int) "two old employees" 2 (List.length matching)

(* ------------------------------------------------------------------ *)
(* View derivation                                                     *)
(* ------------------------------------------------------------------ *)

let emp_view =
  View.Project
    (View.Base (ty "Employee"), List.map at [ "ssn"; "date_of_birth"; "pay_rate" ])

let seniors_view =
  View.Select (emp_view, Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1975))

let test_derive_base () =
  let o = View.derive_exn fig1 ~view:"b" (View.Base (ty "Employee")) in
  Alcotest.(check string) "identity" "Employee" (Type_name.to_string o.name);
  Alcotest.(check int) "no steps" 0 (List.length o.steps)

let test_derive_select_over_project () =
  let o =
    View.derive_exn fig1 ~view:"seniors" ~name:(ty "Seniors") seniors_view
  in
  let h = Schema.hierarchy o.schema in
  Alcotest.(check bool) "Seniors exists" true (Hierarchy.mem h (ty "Seniors"));
  (* a selection type adds no state *)
  Alcotest.check attr_names "same state as the projection"
    (List.map at [ "date_of_birth"; "pay_rate"; "ssn" ])
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "Seniors")));
  Alcotest.(check int) "two steps" 2 (List.length o.steps)

let test_instances_identity_semantics () =
  let db, oids = emp_db () in
  let o = View.derive_exn fig1 ~view:"seniors" ~name:(ty "Seniors") seniors_view in
  Database.set_schema db o.schema;
  (* projection keeps all three, selection keeps the two old ones *)
  Alcotest.(check int) "project keeps identity" 3
    (List.length (View.instances db emp_view));
  let seniors = View.instances db seniors_view in
  Alcotest.(check int) "selection filters" 2 (List.length seniors);
  List.iter
    (fun o -> Alcotest.(check bool) "original oid" true (List.mem o oids))
    seniors

let test_materialize () =
  let db, _ = emp_db () in
  let o = View.derive_exn fig1 ~view:"v" ~name:(ty "EmpView") emp_view in
  Database.set_schema db o.schema;
  let copies = View.materialize db ~view_type:(ty "EmpView") emp_view in
  Alcotest.(check int) "three copies" 3 (List.length copies);
  List.iter
    (fun c ->
      Alcotest.(check string) "copy type" "EmpView"
        (Type_name.to_string (Database.type_of db c));
      match Database.get_attr db c (at "hrs_worked") with
      | exception Database.Store_error _ -> ()
      | _ -> Alcotest.fail "copies must not carry unprojected state")
    copies

let test_duplicate_view_name () =
  match View.derive_exn fig1 ~view:"v" ~name:(ty "Person") seniors_view with
  | exception Error.E (Duplicate_type _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_type"

(* ------------------------------------------------------------------ *)
(* Empty-surrogate collapse (Section 7 open problem)                   *)
(* ------------------------------------------------------------------ *)

let chained_projections k =
  (* Π over Fig 3's A, then repeatedly re-project the view dropping one
     attribute: piles up empty surrogates. *)
  let rec go schema source attrs i =
    if i = k then schema
    else
      let projection = if List.length attrs > 1 && i > 0 then List.tl attrs else attrs in
      let name = ty (Fmt.str "V%d" i) in
      let o =
        Projection.project_exn schema ~view:(Fmt.str "v%d" i) ~derived_name:name
          ~source ~projection ()
      in
      go o.schema name projection (i + 1)
  in
  go Tdp_paper.Fig3.schema (ty "A") (List.map at [ "a2"; "e2"; "h2" ]) 0
  |> fun s -> (s, List.init k (fun i -> ty (Fmt.str "V%d" i)))

let test_collapse_reduces_empty_surrogates () =
  let schema, views = chained_projections 3 in
  let before = Optimize.empty_surrogate_count schema in
  let collapsed, removed =
    Optimize.collapse_exn ~protect:(Type_name.Set.of_list views) schema
  in
  let after = Optimize.empty_surrogate_count collapsed in
  Alcotest.(check bool) "some empty surrogates existed" true (before > 0);
  Alcotest.(check bool) "collapse removed some" true (List.length removed > 0);
  Alcotest.(check bool) "fewer remain" true (after < before);
  (* protected view types survive *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Type_name.to_string v ^ " survives")
        true
        (Hierarchy.mem (Schema.hierarchy collapsed) v))
    views;
  Hierarchy.validate_exn (Schema.hierarchy collapsed)

let test_collapse_preserves_state_and_subtyping () =
  (* collapse_exn re-checks this itself; here we assert independently
     on cumulative state of the original eight types. *)
  let schema, views = chained_projections 2 in
  let collapsed, _ =
    Optimize.collapse_exn ~protect:(Type_name.Set.of_list views) schema
  in
  List.iter
    (fun n ->
      let names h = List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty n)) in
      Alcotest.check attr_names n
        (names (Schema.hierarchy schema))
        (names (Schema.hierarchy collapsed)))
    [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]

let test_collapse_keeps_mentioned_types () =
  let o = Tdp_paper.Fig3.project () in
  (* B_hat and C_hat carry no state but appear in rewritten method
     signatures: they must survive. *)
  let collapsed, _ =
    Optimize.collapse_exn ~protect:(Type_name.Set.singleton o.derived) o.schema
  in
  let h = Schema.hierarchy collapsed in
  Alcotest.(check bool) "B_hat survives (u3 mentions it)" true
    (Hierarchy.mem h (ty "B_hat"));
  Alcotest.(check bool) "C_hat survives (v1, w2 mention it)" true
    (Hierarchy.mem h (ty "C_hat"))

let test_collapse_noop_on_clean_schema () =
  let _, removed = Optimize.collapse_exn Tdp_paper.Fig3.schema in
  Alcotest.(check int) "nothing to collapse" 0 (List.length removed)

(* ------------------------------------------------------------------ *)
(* Generalization (upward inheritance, ref [17])                       *)
(* ------------------------------------------------------------------ *)

module Generalize = Tdp_algebra.Generalize

(* Student and Instructor share Person's attributes. *)
let campus_schema () =
  let attr n t = Attribute.make (at n) t in
  let h = Hierarchy.empty in
  let h =
    Hierarchy.add h
      (Type_def.make
         ~attrs:[ attr "pid" Value_type.int; attr "pname" Value_type.string ]
         (ty "Person"))
  in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ attr "gpa" Value_type.float ]
         ~supers:[ (ty "Person", 1) ] (ty "Student"))
  in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ attr "salary" Value_type.float ]
         ~supers:[ (ty "Person", 1) ] (ty "Instructor"))
  in
  let s = Schema.with_hierarchy Schema.empty h in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_pid" ~id:"get_pid" ~param:"self"
         ~param_type:(ty "Person") ~attr:(at "pid") ~result:Value_type.int)
  in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_gpa" ~id:"get_gpa" ~param:"self"
         ~param_type:(ty "Student") ~attr:(at "gpa") ~result:Value_type.float)
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"badge" ~id:"badge"
         ~signature:(Signature.make ~result:Value_type.int [ ("p", ty "Person") ])
         (General [ Body.return_ (Body.call "get_pid" [ Body.var "p" ]) ]))
  in
  s

let test_generalize_basic () =
  let s = campus_schema () in
  let o =
    Generalize.generalize_exn s ~view:"affiliates" ~name:(ty "Affiliate")
      (ty "Student") (ty "Instructor")
  in
  Alcotest.check attr_names "common attrs" [ at "pid"; at "pname" ]
    (List.sort Attr_name.compare o.common);
  let h = Schema.hierarchy o.schema in
  Alcotest.check attr_names "Affiliate state = common"
    [ at "pid"; at "pname" ]
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "Affiliate")));
  Alcotest.(check bool) "Student ⪯ Affiliate" true
    (Hierarchy.subtype h (ty "Student") (ty "Affiliate"));
  Alcotest.(check bool) "Instructor ⪯ Affiliate" true
    (Hierarchy.subtype h (ty "Instructor") (ty "Affiliate"));
  (* operands keep their state *)
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (n ^ " state size") want
        (List.length (Hierarchy.all_attribute_names h (ty n))))
    [ ("Student", 3); ("Instructor", 3); ("Person", 2) ];
  (* behavior: badge reads only pid, so it serves Affiliates; get_gpa
     does not *)
  let cache = Schema_index.of_hierarchy h in
  let applicable =
    List.map Method_def.id
      (Schema.methods_applicable_to_type o.schema cache (ty "Affiliate"))
  in
  Alcotest.(check bool) "badge applicable" true (List.mem "badge" applicable);
  Alcotest.(check bool) "get_gpa not applicable" false
    (List.mem "get_gpa" applicable)

let test_generalize_union_extent () =
  let s = campus_schema () in
  let o =
    Generalize.generalize_exn s ~view:"affiliates" ~name:(ty "Affiliate")
      (ty "Student") (ty "Instructor")
  in
  let db = Database.create o.schema in
  let mk t extra =
    Database.new_object db (ty t)
      ~init:((at "pid", Value.Int 1) :: (at "pname", Value.String "x") :: extra)
  in
  let st = mk "Student" [ (at "gpa", Value.Float 3.0) ] in
  let inst = mk "Instructor" [ (at "salary", Value.Float 10.0) ] in
  let p =
    Database.new_object db (ty "Person")
      ~init:[ (at "pid", Value.Int 3); (at "pname", Value.String "p") ]
  in
  let ext = Database.extent db (ty "Affiliate") in
  Alcotest.(check bool) "student in union" true (List.mem st ext);
  Alcotest.(check bool) "instructor in union" true (List.mem inst ext);
  Alcotest.(check bool) "plain person not in union" false (List.mem p ext)

let test_generalize_errors () =
  let s = campus_schema () in
  (match
     Generalize.generalize s ~view:"v" ~name:(ty "Person") (ty "Student")
       (ty "Instructor")
   with
  | Error (Duplicate_type _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_type");
  (* no shared attributes *)
  let s2 =
    Schema.add_type s (Type_def.make ~attrs:[ Attribute.make (at "z") Value_type.int ] (ty "Alien"))
  in
  match
    Generalize.generalize s2 ~view:"v" ~name:(ty "U") (ty "Student") (ty "Alien")
  with
  | Error (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "expected no-common-attributes failure"

let suite_pred =
  [ Alcotest.test_case "attrs and check" `Quick test_pred_attrs_and_check;
    Alcotest.test_case "typing" `Quick test_pred_typing;
    Alcotest.test_case "compare values" `Quick test_compare_values;
    Alcotest.test_case "eval" `Quick test_pred_eval
  ]

let suite_view =
  [ Alcotest.test_case "base" `Quick test_derive_base;
    Alcotest.test_case "select over project" `Quick test_derive_select_over_project;
    Alcotest.test_case "identity instances" `Quick test_instances_identity_semantics;
    Alcotest.test_case "materialize" `Quick test_materialize;
    Alcotest.test_case "duplicate view name" `Quick test_duplicate_view_name
  ]

let suite_optimize =
  [ Alcotest.test_case "reduces empty surrogates" `Quick
      test_collapse_reduces_empty_surrogates;
    Alcotest.test_case "preserves state and subtyping" `Quick
      test_collapse_preserves_state_and_subtyping;
    Alcotest.test_case "keeps mentioned types" `Quick test_collapse_keeps_mentioned_types;
    Alcotest.test_case "no-op on clean schema" `Quick test_collapse_noop_on_clean_schema
  ]

(* ------------------------------------------------------------------ *)
(* Materialized view maintenance                                       *)
(* ------------------------------------------------------------------ *)

module Matview = Tdp_algebra.Matview

let test_matview_lifecycle () =
  let db, oids = emp_db () in
  let o = View.derive_exn fig1 ~view:"v" ~name:(ty "SeniorsM") seniors_view in
  Database.set_schema db o.schema;
  let mv = Matview.create db ~view_type:(ty "SeniorsM") seniors_view in
  (* e1 (1970) and e3 (1960) qualify initially *)
  Alcotest.(check int) "two copies" 2 (List.length (Matview.copies mv));
  (* no-op refresh *)
  let s = Matview.refresh db mv in
  Alcotest.(check bool) "steady state" true (s = Matview.no_change);
  (* update a source attribute visible in the view: copy is updated *)
  let e1 = List.nth oids 0 in
  Database.set_attr db e1 (at "pay_rate") (Value.Float 99.0);
  let s = Matview.refresh db mv in
  Alcotest.(check int) "one update" 1 s.updated;
  let copy_of_e1 = Tdp_store.Oid.Map.find e1 (Matview.mapping mv) in
  Alcotest.(check bool) "copy sees new pay rate" true
    (Value.equal (Database.get_attr db copy_of_e1 (at "pay_rate")) (Value.Float 99.0));
  (* move a source out of the selection: its copy is removed *)
  Database.set_attr db e1 (at "date_of_birth") (Value.Date 2000);
  let s = Matview.refresh db mv in
  Alcotest.(check int) "one removal" 1 s.removed;
  Alcotest.(check int) "one copy left" 1 (List.length (Matview.copies mv));
  (* a new qualifying employee appears: one addition *)
  let _e4 =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int 4);
          (at "date_of_birth", Value.Date 1950);
          (at "pay_rate", Value.Float 10.0);
          (at "hrs_worked", Value.Float 1.0)
        ]
  in
  let s = Matview.refresh db mv in
  Alcotest.(check int) "one addition" 1 s.added;
  Alcotest.(check int) "two copies again" 2 (List.length (Matview.copies mv));
  (* copy identity is stable across refreshes *)
  let e3 = List.nth oids 2 in
  let copy_before = Tdp_store.Oid.Map.find e3 (Matview.mapping mv) in
  ignore (Matview.refresh db mv);
  Alcotest.(check bool) "stable copy identity" true
    (Tdp_store.Oid.equal copy_before (Tdp_store.Oid.Map.find e3 (Matview.mapping mv)))

let suite_matview =
  [ Alcotest.test_case "lifecycle" `Quick test_matview_lifecycle ]

(* ------------------------------------------------------------------ *)
(* Join                                                                *)
(* ------------------------------------------------------------------ *)

module Join = Tdp_algebra.Join

let join_schema () =
  let attr n t = Attribute.make (at n) t in
  let h = Hierarchy.empty in
  let h =
    Hierarchy.add h
      (Type_def.make
         ~attrs:[ attr "eid" Value_type.int; attr "dept_id" Value_type.int ]
         (ty "Emp"))
  in
  let h =
    Hierarchy.add h
      (Type_def.make
         ~attrs:[ attr "dept_no" Value_type.int; attr "dname" Value_type.string ]
         (ty "Dept"))
  in
  Schema.with_hierarchy Schema.empty h

let test_join_derive () =
  let s = join_schema () in
  let o = Join.derive_exn s ~name:(ty "EmpDept") (ty "Emp") (ty "Dept") in
  let h = Schema.hierarchy o.schema in
  Alcotest.(check bool) "J ⪯ Emp" true (Hierarchy.subtype h (ty "EmpDept") (ty "Emp"));
  Alcotest.(check bool) "J ⪯ Dept" true
    (Hierarchy.subtype h (ty "EmpDept") (ty "Dept"));
  Alcotest.check attr_names "combined state"
    (List.map at [ "dept_id"; "dept_no"; "dname"; "eid" ])
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "EmpDept")));
  (* existing types untouched *)
  Alcotest.(check int) "Emp unchanged" 2
    (List.length (Hierarchy.all_attribute_names h (ty "Emp")));
  Alcotest.(check int) "no ambiguities" 0 (List.length o.ambiguities)

let test_join_method_precedence () =
  (* When both operands define a method of the same generic function,
     the join's supertype precedence (left = 1) decides: the left
     operand's method shadows the right's for join instances — the
     CLOS resolution the paper's Section 2 precedence relation exists
     for.  No ambiguity is reported because the order is total. *)
  let s = join_schema () in
  let mk id on =
    Method_def.make ~gf:"describe" ~id
      ~signature:(Signature.make [ ("x", ty on) ])
      (General [ Body.return_unit ])
  in
  let s = Schema.add_method s (mk "d_emp" "Emp") in
  let s = Schema.add_method s (mk "d_dept" "Dept") in
  let o = Join.derive_exn s ~name:(ty "EmpDept") (ty "Emp") (ty "Dept") in
  Alcotest.(check int) "no ambiguity: precedence resolves" 0
    (List.length o.ambiguities);
  let d = Tdp_dispatch.Dispatch.create o.schema in
  (match
     Tdp_dispatch.Dispatch.most_specific d ~gf:"describe"
       ~arg_types:[ ty "EmpDept" ]
   with
  | Some m ->
      Alcotest.(check string) "left operand shadows" "d_emp" (Method_def.id m)
  | None -> Alcotest.fail "no method");
  (* swapping the operands swaps the winner *)
  let o2 = Join.derive_exn s ~name:(ty "DeptEmp") (ty "Dept") (ty "Emp") in
  let d2 = Tdp_dispatch.Dispatch.create o2.schema in
  match
    Tdp_dispatch.Dispatch.most_specific d2 ~gf:"describe"
      ~arg_types:[ ty "DeptEmp" ]
  with
  | Some m -> Alcotest.(check string) "swapped winner" "d_dept" (Method_def.id m)
  | None -> Alcotest.fail "no method"

let test_join_errors () =
  let s = join_schema () in
  (match Join.derive s ~name:(ty "Emp") (ty "Emp") (ty "Dept") with
  | Error (Duplicate_type _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_type");
  (* related operands *)
  let o = Tdp_paper.Fig1.schema in
  match Join.derive o ~name:(ty "J") (ty "Employee") (ty "Person") with
  | Error (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "expected related-operands failure"

let test_join_materialize () =
  let s = join_schema () in
  let o = Join.derive_exn s ~name:(ty "EmpDept") (ty "Emp") (ty "Dept") in
  let db = Database.create o.schema in
  let emp eid dept =
    Database.new_object db (ty "Emp")
      ~init:[ (at "eid", Value.Int eid); (at "dept_id", dept) ]
  in
  let dept no name =
    Database.new_object db (ty "Dept")
      ~init:[ (at "dept_no", Value.Int no); (at "dname", Value.String name) ]
  in
  let _e1 = emp 1 (Value.Int 10) in
  let _e2 = emp 2 (Value.Int 20) in
  let _e3 = emp 3 Value.Null in
  let _d10 = dept 10 "db" in
  let _d30 = dept 30 "os" in
  let joined =
    Join.materialize_exn db ~join_type:(ty "EmpDept")
      ~on:[ (at "dept_id", at "dept_no") ]
      ~left:(ty "Emp") ~right:(ty "Dept")
  in
  (* only e1×d10 matches; e2 has no dept, e3 is Null *)
  Alcotest.(check int) "one pair" 1 (List.length joined);
  let j = List.hd joined in
  Alcotest.(check bool) "combined slots" true
    (Value.equal (Database.get_attr db j (at "eid")) (Value.Int 1)
    && Value.equal (Database.get_attr db j (at "dname")) (Value.String "db"));
  (* the join objects are in both operand extents *)
  Alcotest.(check bool) "join object is an Emp" true
    (List.mem j (Database.extent db (ty "Emp")))

let suite_join =
  [ Alcotest.test_case "derive" `Quick test_join_derive;
    Alcotest.test_case "method precedence" `Quick test_join_method_precedence;
    Alcotest.test_case "errors" `Quick test_join_errors;
    Alcotest.test_case "materialize" `Quick test_join_materialize
  ]

let suite_generalize =
  [ Alcotest.test_case "basic" `Quick test_generalize_basic;
    Alcotest.test_case "union extent" `Quick test_generalize_union_extent;
    Alcotest.test_case "errors" `Quick test_generalize_errors
  ]

let () =
  Alcotest.run "algebra"
    [ ("pred", suite_pred);
      ("view", suite_view);
      ("optimize", suite_optimize);
      ("generalize", suite_generalize);
      ("matview", suite_matview);
      ("join", suite_join)
    ]
