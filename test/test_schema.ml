open Tdp_core
open Helpers

let base () = Tdp_paper.Fig1.schema

let test_declare_gf_duplicate () =
  let s = base () in
  match Schema.declare_gf s (Generic_function.declare ~arity:1 "age") with
  | exception Error.E (Unknown_generic_function _) -> ()
  | _ -> Alcotest.fail "re-declaring an existing gf must fail"

let test_add_method_arity_mismatch () =
  let s = base () in
  let m =
    Method_def.make ~gf:"age" ~id:"age2"
      ~signature:(Signature.make [ ("a", ty "Person"); ("b", ty "Person") ])
      (General [ Body.return_unit ])
  in
  match Schema.add_method s m with
  | exception Error.E (Arity_mismatch { gf = "age"; expected = 1; got = 2 }) -> ()
  | _ -> Alcotest.fail "expected Arity_mismatch"

let test_duplicate_method_id () =
  let s = base () in
  let m =
    Method_def.make ~gf:"age" ~id:"age"
      ~signature:(Signature.make [ ("a", ty "Person") ])
      (General [ Body.return_unit ])
  in
  match Schema.add_method s m with
  | exception Error.E (Duplicate_method { gf = "age"; id = "age" }) -> ()
  | _ -> Alcotest.fail "expected Duplicate_method"

let test_find_gf () =
  let s = base () in
  Alcotest.(check int) "age arity" 1 (Generic_function.arity (Schema.find_gf s "age"));
  (match Schema.find_gf s "nope" with
  | exception Error.E (Unknown_generic_function "nope") -> ()
  | _ -> Alcotest.fail "expected Unknown_generic_function");
  Alcotest.(check bool) "find_gf_opt none" true (Schema.find_gf_opt s "nope" = None)

let test_is_writer_gf () =
  let s = base () in
  Alcotest.(check bool) "set_pay_rate is a writer gf" true
    (Schema.is_writer_gf s "set_pay_rate");
  Alcotest.(check bool) "age is not" false (Schema.is_writer_gf s "age");
  Alcotest.(check bool) "get_ssn is not" false (Schema.is_writer_gf s "get_ssn");
  Alcotest.(check bool) "unknown is not" false (Schema.is_writer_gf s "nope")

let test_accessors_of_attr () =
  let s = base () in
  Alcotest.(check (list string)) "pay_rate accessors"
    [ "get_pay_rate"; "set_pay_rate" ]
    (List.sort String.compare
       (List.map Method_def.id (Schema.accessors_of_attr s (at "pay_rate"))))

let test_remove_method_keeps_gf () =
  let s = base () in
  let s = Schema.remove_method s (key "age" "age") in
  Alcotest.(check bool) "method gone" true
    (Schema.find_method_opt s (key "age" "age") = None);
  Alcotest.(check bool) "gf survives" true (Schema.find_gf_opt s "age" <> None);
  (* a body calling the now-empty gf still validates *)
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"probe" ~id:"probe"
         ~signature:(Signature.make [ ("p", ty "Person") ])
         (General [ Body.expr (Body.call "age" [ Body.var "p" ]) ]))
  in
  Schema.validate_exn s;
  Typing.check_all_methods s

let test_update_method () =
  let s = base () in
  let s =
    Schema.update_method s (key "age" "age") (fun m ->
        Method_def.with_signature m
          (Signature.make ~result:Value_type.int [ ("p", ty "Employee") ]))
  in
  Alcotest.(check (list string)) "updated" [ "Employee" ]
    (method_param_types s "age" "age")

let test_validate_accessor_attr () =
  (* an accessor whose argument type lacks the attribute *)
  let s = base () in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"bad" ~id:"bad" ~param:"self" ~param_type:(ty "Person")
         ~attr:(at "pay_rate") ~result:Value_type.float)
  in
  match Schema.validate_exn s with
  | exception Error.E (Accessor_attr_not_inherited _) -> ()
  | _ -> Alcotest.fail "expected Accessor_attr_not_inherited"

let test_methods_applicable_to_call_arity () =
  let s = base () in
  let cache = Schema_index.of_hierarchy (Schema.hierarchy s) in
  (* wrong arity: no methods, no crash *)
  Alcotest.(check int) "wrong arity" 0
    (List.length
       (Schema.methods_applicable_to_call s cache ~gf:"age"
          ~arg_types:[ ty "Person"; ty "Person" ]));
  match
    Schema.methods_applicable_to_call s cache ~gf:"nope" ~arg_types:[ ty "Person" ]
  with
  | exception Error.E (Unknown_generic_function _) -> ()
  | _ -> Alcotest.fail "expected Unknown_generic_function"

let test_gfs_sorted_and_all_methods () =
  let s = base () in
  let names = List.map Generic_function.name (Schema.gfs s) in
  Alcotest.(check (list string)) "name order" (List.sort String.compare names) names;
  Alcotest.(check int) "nine methods" 9 (List.length (Schema.all_methods s))

let suite =
  [ Alcotest.test_case "declare_gf duplicate" `Quick test_declare_gf_duplicate;
    Alcotest.test_case "add_method arity" `Quick test_add_method_arity_mismatch;
    Alcotest.test_case "duplicate method id" `Quick test_duplicate_method_id;
    Alcotest.test_case "find_gf" `Quick test_find_gf;
    Alcotest.test_case "is_writer_gf" `Quick test_is_writer_gf;
    Alcotest.test_case "accessors_of_attr" `Quick test_accessors_of_attr;
    Alcotest.test_case "remove_method keeps gf" `Quick test_remove_method_keeps_gf;
    Alcotest.test_case "update_method" `Quick test_update_method;
    Alcotest.test_case "validate accessor attr" `Quick test_validate_accessor_attr;
    Alcotest.test_case "applicable-to-call arity" `Quick
      test_methods_applicable_to_call_arity;
    Alcotest.test_case "gfs order, all_methods" `Quick test_gfs_sorted_and_all_methods
  ]

let () = Alcotest.run "schema" [ ("schema", suite) ]
