open Tdp_core
open Helpers

let attr n = Attribute.make (at n) Value_type.int

(* Diamond with attributes everywhere: D ⪯ B,C ⪯ A. *)
let diamond_schema () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "a1"; attr "a2" ] (ty "A")) in
  let h =
    Hierarchy.add h (Type_def.make ~attrs:[ attr "b1" ] ~supers:[ (ty "A", 1) ] (ty "B"))
  in
  let h =
    Hierarchy.add h (Type_def.make ~attrs:[ attr "c1" ] ~supers:[ (ty "A", 1) ] (ty "C"))
  in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ attr "d1" ]
         ~supers:[ (ty "B", 1); (ty "C", 2) ]
         (ty "D"))
  in
  Schema.with_hierarchy Schema.empty h

let run_factor_state ?derived_name schema ~source ~projection =
  Factor_state.run_exn (Schema.hierarchy schema) ~view:"v"
    ?derived_name:(Option.map ty derived_name) ~source:(ty source)
    ~projection:(List.map at projection) ()

(* ------------------------------------------------------------------ *)
(* FactorState                                                         *)
(* ------------------------------------------------------------------ *)

let test_diamond_memoization () =
  (* a1 is reachable from D through both B and C; A must be factored
     exactly once, and both B_hat and C_hat link to A_hat. *)
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1"; "a1" ] in
  let h = o.hierarchy in
  check_type h "D_hat" ~attrs:[ "d1" ] ~supers:[ ("B_hat", 1); ("C_hat", 2) ];
  check_type h "B_hat" ~attrs:[] ~supers:[ ("A_hat", 1) ];
  check_type h "C_hat" ~attrs:[] ~supers:[ ("A_hat", 1) ];
  check_type h "A_hat" ~attrs:[ "a1" ] ~supers:[];
  check_type h "A" ~attrs:[ "a2" ] ~supers:[ ("A_hat", 0) ];
  Alcotest.(check int) "four surrogates" 4 (Type_name.Map.cardinal o.surrogates)

let test_local_only_projection () =
  (* Projecting only local attributes factors just the source. *)
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1" ] in
  Alcotest.(check int) "one surrogate" 1 (Type_name.Map.cardinal o.surrogates);
  check_type o.hierarchy "D_hat" ~attrs:[ "d1" ] ~supers:[];
  check_type o.hierarchy "D" ~attrs:[]
    ~supers:[ ("D_hat", 0); ("B", 1); ("C", 2) ]

let test_skips_branch_without_attrs () =
  (* Projecting d1 and b1: the C branch carries nothing and must not be
     factored. *)
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1"; "b1" ] in
  Alcotest.(check bool) "no C_hat" false (Hierarchy.mem o.hierarchy (ty "C_hat"));
  check_type o.hierarchy "D_hat" ~attrs:[ "d1" ] ~supers:[ ("B_hat", 1) ]

let test_surrogate_precedence_below_zero () =
  (* If a type's supers already use precedence 0, the surrogate slides
     below it. *)
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "x" ] (ty "P")) in
  let h =
    Hierarchy.add h (Type_def.make ~attrs:[ attr "y" ] ~supers:[ (ty "P", 0) ] (ty "Q"))
  in
  let o =
    Factor_state.run_exn h ~view:"v" ~source:(ty "Q")
      ~projection:[ at "y"; at "x" ] ()
  in
  check_type o.hierarchy "Q" ~attrs:[] ~supers:[ ("Q_hat", -1); ("P", 0) ]

let test_derived_name_taken () =
  match
    run_factor_state ~derived_name:"A" (diamond_schema ()) ~source:"D"
      ~projection:[ "d1" ]
  with
  | exception Error.E (Duplicate_type _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_type"

let test_origin_recorded () =
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1"; "a1" ] in
  let def = Hierarchy.find o.hierarchy (ty "A_hat") in
  match Type_def.origin def with
  | Surrogate { source; view } ->
      Alcotest.(check string) "source" "A" (Type_name.to_string source);
      Alcotest.(check string) "view" "v" view
  | Source -> Alcotest.fail "A_hat should be a surrogate"

(* ------------------------------------------------------------------ *)
(* Augment                                                             *)
(* ------------------------------------------------------------------ *)

let test_augment_empty_z () =
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1" ] in
  let a =
    Augment.run_exn o.hierarchy ~view:"v" ~source:(ty "D") ~surrogates:o.surrogates
      ~z:Type_name.Set.empty
  in
  Alcotest.(check bool) "hierarchy untouched" true
    (Hierarchy.equal o.hierarchy a.hierarchy)

let test_augment_unrelated_z () =
  (* Z names a type that is not a supertype of the source: the gate
     never opens, nothing is created. *)
  let s = diamond_schema () in
  let s = Schema.map_hierarchy s (fun h -> Hierarchy.add h (Type_def.make (ty "Z"))) in
  let o = run_factor_state s ~source:"D" ~projection:[ "d1" ] in
  let a =
    Augment.run_exn o.hierarchy ~view:"v" ~source:(ty "D") ~surrogates:o.surrogates
      ~z:(Type_name.Set.singleton (ty "Z"))
  in
  Alcotest.(check bool) "hierarchy untouched" true
    (Hierarchy.equal o.hierarchy a.hierarchy)

let test_augment_creates_path () =
  (* Z = {A} with only D factored: Augment must create B_hat (or reuse)
     along the precedence-ordered walk and give D_hat a path to A_hat. *)
  let o = run_factor_state (diamond_schema ()) ~source:"D" ~projection:[ "d1" ] in
  let a =
    Augment.run_exn o.hierarchy ~view:"v" ~source:(ty "D") ~surrogates:o.surrogates
      ~z:(Type_name.Set.singleton (ty "A"))
  in
  Alcotest.(check bool) "D_hat ⪯ A_hat" true
    (Hierarchy.subtype a.hierarchy (ty "D_hat") (ty "A_hat"));
  (* the new surrogates are empty *)
  List.iter
    (fun n ->
      if not (Hierarchy.mem o.hierarchy (ty n)) && Hierarchy.mem a.hierarchy (ty n)
      then
        Alcotest.(check int)
          (n ^ " empty") 0
          (List.length (Type_def.attrs (Hierarchy.find a.hierarchy (ty n)))))
    [ "A_hat"; "B_hat"; "C_hat" ]

(* ------------------------------------------------------------------ *)
(* FactorMethods                                                       *)
(* ------------------------------------------------------------------ *)

let test_factor_methods_untouched_without_surrogates () =
  let s = diamond_schema () in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_c1" ~id:"get_c1" ~param:"self" ~param_type:(ty "C")
         ~attr:(at "c1") ~result:Value_type.int)
  in
  let o = run_factor_state s ~source:"D" ~projection:[ "d1" ] in
  let s = Schema.with_hierarchy s o.hierarchy in
  let s', rewrites =
    Factor_methods.run_exn s ~surrogates:o.surrogates
      ~applicable:(keys [ ("get_c1", "get_c1") ])
  in
  Alcotest.(check int) "no rewrites" 0 (List.length rewrites);
  Alcotest.(check (list string)) "signature intact" [ "C" ]
    (method_param_types s' "get_c1" "get_c1")

let test_factor_methods_partial_rewrite () =
  (* A two-argument method where only one formal's type was factored:
     only that position is rewritten. *)
  let s = diamond_schema () in
  let s = Schema.map_hierarchy s (fun h -> Hierarchy.add h (Type_def.make (ty "Z"))) in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"f" ~id:"f1"
         ~signature:(Signature.make [ ("d", ty "D"); ("z", ty "Z") ])
         (General [ Body.expr (Body.var "d") ]))
  in
  let o = run_factor_state s ~source:"D" ~projection:[ "d1" ] in
  let s = Schema.with_hierarchy s o.hierarchy in
  let s', rewrites =
    Factor_methods.run_exn s ~surrogates:o.surrogates ~applicable:(keys [ ("f", "f1") ])
  in
  Alcotest.(check int) "one rewrite" 1 (List.length rewrites);
  Alcotest.(check (list string)) "only D rewritten" [ "D_hat"; "Z" ]
    (method_param_types s' "f" "f1")

(* ------------------------------------------------------------------ *)
(* Full pipeline corner cases                                          *)
(* ------------------------------------------------------------------ *)

let test_projection_of_everything () =
  (* Projecting the full cumulative state: the derived type is a
     supertype with ALL the state; every branch is factored; sources
     keep empty local state but identical cumulative state. *)
  let s = diamond_schema () in
  let o =
    Projection.project_exn s ~view:"all" ~source:(ty "D")
      ~projection:(List.map at [ "d1"; "b1"; "a1"; "a2"; "c1" ])
      ()
  in
  let h = Schema.hierarchy o.schema in
  Alcotest.(check int) "four surrogates" 4 (Type_name.Map.cardinal o.surrogates);
  Alcotest.check attr_names "derived has everything"
    (List.map at [ "a1"; "a2"; "b1"; "c1"; "d1" ])
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h o.derived))

let test_projection_missing_formal_surrogate () =
  (* A method on a supertype branch that carries no projected state:
     the paper's FactorMethods would strand it; our Z-extension must
     create the missing surrogate so the derived type inherits it.
     Setup: D ⪯ B,C; project only b1 (B branch); method g1(C) reads an
     attribute... that cannot work since accessors on the C branch
     can't be applicable.  Instead g1(C) calls u(c) where u has a
     method u1(B) reading b1: relevant, substituted call u(D)… u1(B)
     applicable to u(D) ✓ and reads b1 ∈ p ⇒ g1 applicable, yet C gets
     no surrogate from FactorState. *)
  let s = diamond_schema () in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_b1" ~id:"get_b1" ~param:"self" ~param_type:(ty "B")
         ~attr:(at "b1") ~result:Value_type.int)
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"u" ~id:"u1"
         ~signature:(Signature.make [ ("b", ty "B") ])
         (General [ Body.expr (Body.call "get_b1" [ Body.var "b" ]) ]))
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"g" ~id:"g1"
         ~signature:(Signature.make [ ("c", ty "C") ])
         (General [ Body.expr (Body.call "u" [ Body.var "c" ]) ]))
  in
  let o =
    Projection.project_exn s ~view:"v" ~source:(ty "D")
      ~projection:[ at "d1"; at "b1" ] ()
  in
  Alcotest.(check bool) "g1 applicable" true
    (Applicability.status o.analysis (key "g" "g1") = `Applicable);
  Alcotest.(check bool) "C got a surrogate" true
    (Type_name.Map.mem (ty "C") o.surrogates);
  Alcotest.(check (list string)) "g1 relocated" [ "C_hat" ]
    (method_param_types o.schema "g" "g1");
  (* the derived type inherits g1 *)
  let cache = Schema_index.of_hierarchy (Schema.hierarchy o.schema) in
  Alcotest.(check bool) "derived inherits g1" true
    (List.exists
       (fun m -> Method_def.Key.equal (Method_def.key m) (key "g" "g1"))
       (Schema.methods_applicable_to_type o.schema cache o.derived))

let test_augment_fixpoint_retypes_through_missing_formals () =
  (* Distilled from a property-test counterexample (synth seed 5303):
     S ⪯ P ⪯ U; Π_{s1} S factors only S.  Method m(P) is applicable
     (its call bottoms out on the projected s1) and its body widens the
     formal into a local of type U.  The formal type P gets a surrogate
     only through the missing-formal extension, which in turn rebinds
     p, which forces l's type U into Y — so Û and the mirror path
     P̂ ⪯ Û must exist for the re-typed body to type-check.  A single
     Y − X Augment pass misses this; the fixpoint catches it. *)
  let s =
    let attr n = Attribute.make (at n) Value_type.int in
    let h = Hierarchy.empty in
    let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "u1" ] (ty "U")) in
    let h = Hierarchy.add h (Type_def.make ~supers:[ (ty "U", 1) ] (ty "P")) in
    let h =
      Hierarchy.add h
        (Type_def.make ~attrs:[ attr "s1"; attr "s2" ] ~supers:[ (ty "P", 1) ] (ty "S"))
    in
    Schema.with_hierarchy Schema.empty h
  in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_s1" ~id:"get_s1" ~param:"self" ~param_type:(ty "S")
         ~attr:(at "s1") ~result:Value_type.int)
  in
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"m" ~id:"m1"
         ~signature:(Signature.make [ ("p", ty "P") ])
         (General
            [ Body.local "l" (Value_type.named (ty "U")) ~init:(Body.var "p");
              Body.expr (Body.call "get_s1" [ Body.var "p" ])
            ]))
  in
  let o =
    Projection.project_exn s ~view:"v" ~source:(ty "S") ~projection:[ at "s1" ] ()
  in
  Alcotest.(check bool) "m1 applicable" true
    (Applicability.status o.analysis (key "m" "m1") = `Applicable);
  Alcotest.(check (list string)) "m1 relocated to P_hat" [ "P_hat" ]
    (method_param_types o.schema "m" "m1");
  let h = Schema.hierarchy o.schema in
  Alcotest.(check bool) "U_hat exists" true (Hierarchy.mem h (ty "U_hat"));
  Alcotest.(check bool) "P_hat ⪯ U_hat" true
    (Hierarchy.subtype h (ty "P_hat") (ty "U_hat"));
  (* the re-typed body still type-checks (checked by the pipeline, but
     assert the local explicitly) *)
  let m1 = Schema.find_method o.schema (key "m" "m1") in
  (match Method_def.body m1 with
  | Some body ->
      Alcotest.(check bool) "l re-typed to U_hat" true
        (List.exists
           (fun (x, t) ->
             x = "l" && Value_type.equal t (Value_type.named (ty "U_hat")))
           (Body.locals body))
  | None -> Alcotest.fail "no body");
  (* and the derived view really inherits m1 *)
  let cache = Schema_index.of_hierarchy h in
  Alcotest.(check bool) "view inherits m1" true
    (List.exists
       (fun m -> Method_def.Key.equal (Method_def.key m) (key "m" "m1"))
       (Schema.methods_applicable_to_type o.schema cache o.derived))

let test_views_over_views () =
  (* Project the projection: Employee_hat is itself projectable. *)
  let o1 = Tdp_paper.Fig1.project () in
  let o2 =
    Projection.project_exn o1.schema ~view:"v2"
      ~derived_name:(ty "Tiny")
      ~source:(ty "Employee_hat")
      ~projection:[ at "ssn" ] ()
  in
  let h = Schema.hierarchy o2.schema in
  Alcotest.check attr_names "Tiny = {ssn}" [ at "ssn" ]
    (Hierarchy.all_attribute_names h (ty "Tiny"));
  Alcotest.(check bool) "Employee ⪯ Tiny" true
    (Hierarchy.subtype h (ty "Employee") (ty "Tiny"));
  (* get_ssn survives two hops *)
  let cache = Schema_index.of_hierarchy h in
  Alcotest.(check bool) "Tiny answers get_ssn" true
    (List.exists
       (fun m -> String.equal (Method_def.gf m) "get_ssn")
       (Schema.methods_applicable_to_type o2.schema cache (ty "Tiny")))

let test_projection_of_root_type () =
  (* A root type with no supertypes and no methods: the pipeline
     reduces to a single surrogate and nothing else. *)
  let s =
    Schema.add_type Schema.empty
      (Type_def.make
         ~attrs:[ Attribute.make (at "r1") Value_type.int;
                  Attribute.make (at "r2") Value_type.int ]
         (ty "Root"))
  in
  let o =
    Projection.project_exn s ~view:"v" ~source:(ty "Root") ~projection:[ at "r1" ] ()
  in
  let h = Schema.hierarchy o.schema in
  Alcotest.(check int) "two types" 2 (Hierarchy.cardinal h);
  check_type h "Root_hat" ~attrs:[ "r1" ] ~supers:[];
  check_type h "Root" ~attrs:[ "r2" ] ~supers:[ ("Root_hat", 0) ];
  Alcotest.(check int) "no rewrites" 0 (List.length o.rewrites);
  Alcotest.(check bool) "Z empty" true (Type_name.Set.is_empty o.z)

let test_projection_schema_without_methods () =
  (* The diamond with no generic functions at all: applicability is
     trivially empty, factoring still works. *)
  let o =
    Projection.project_exn (diamond_schema ()) ~view:"v" ~source:(ty "D")
      ~projection:[ at "d1"; at "a1" ] ()
  in
  Alcotest.(check int) "no candidates" 0
    (Method_def.Key.Set.cardinal o.analysis.candidates);
  Alcotest.(check int) "four surrogates" 4 (Type_name.Map.cardinal o.surrogates)

let test_chain_specialization_fig1 () =
  (* Figure 1 is single-inheritance: the Section 7 chain specialization
     must reproduce Figure 2's factoring exactly. *)
  let h = Schema.hierarchy Tdp_paper.Fig1.schema in
  Alcotest.(check bool) "fig1 is single inheritance" true
    (Specialize.is_single_inheritance h);
  Alcotest.(check bool) "fig1 is single dispatch" true
    (Specialize.is_single_dispatch Tdp_paper.Fig1.schema);
  let o =
    Specialize.factor_chain_exn h ~view:"v"
      ~derived_name:(ty "Employee_hat")
      ~source:(ty "Employee") ~projection:Tdp_paper.Fig1.projection ()
  in
  check_type o.hierarchy "Employee_hat" ~attrs:[ "pay_rate" ]
    ~supers:[ ("Person_hat", 1) ];
  check_type o.hierarchy "Person_hat" ~attrs:[ "ssn"; "date_of_birth" ] ~supers:[];
  let general =
    Factor_state.run_exn h ~view:"v"
      ~derived_name:(ty "Employee_hat")
      ~source:(ty "Employee") ~projection:Tdp_paper.Fig1.projection ()
  in
  Alcotest.(check bool) "agrees with the general algorithm" true
    (Hierarchy.equal o.hierarchy general.hierarchy);
  (* and it refuses multiple inheritance *)
  match
    Specialize.factor_chain (Schema.hierarchy Tdp_paper.Fig3.schema) ~view:"v"
      ~source:(ty "A") ~projection:Tdp_paper.Fig3.projection ()
  with
  | Error (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "fig3 is multiple inheritance"

let test_projection_unknown_source () =
  match
    Projection.project (diamond_schema ()) ~view:"v" ~source:(ty "Nope")
      ~projection:[ at "d1" ] ()
  with
  | Error (Unknown_type _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok _ -> Alcotest.fail "expected Unknown_type"

let suite_state =
  [ Alcotest.test_case "diamond memoization" `Quick test_diamond_memoization;
    Alcotest.test_case "local-only projection" `Quick test_local_only_projection;
    Alcotest.test_case "skips empty branch" `Quick test_skips_branch_without_attrs;
    Alcotest.test_case "precedence below zero" `Quick
      test_surrogate_precedence_below_zero;
    Alcotest.test_case "derived name taken" `Quick test_derived_name_taken;
    Alcotest.test_case "surrogate origin" `Quick test_origin_recorded
  ]

let suite_augment =
  [ Alcotest.test_case "empty Z" `Quick test_augment_empty_z;
    Alcotest.test_case "unrelated Z" `Quick test_augment_unrelated_z;
    Alcotest.test_case "creates path to Z" `Quick test_augment_creates_path
  ]

let suite_methods =
  [ Alcotest.test_case "no surrogates, no rewrite" `Quick
      test_factor_methods_untouched_without_surrogates;
    Alcotest.test_case "partial rewrite" `Quick test_factor_methods_partial_rewrite
  ]

let suite_pipeline =
  [ Alcotest.test_case "project everything" `Quick test_projection_of_everything;
    Alcotest.test_case "missing formal surrogate (Z-extension)" `Quick
      test_projection_missing_formal_surrogate;
    Alcotest.test_case "augment fixpoint re-typing" `Quick
      test_augment_fixpoint_retypes_through_missing_formals;
    Alcotest.test_case "views over views" `Quick test_views_over_views;
    Alcotest.test_case "root type" `Quick test_projection_of_root_type;
    Alcotest.test_case "chain specialization (fig1)" `Quick
      test_chain_specialization_fig1;
    Alcotest.test_case "schema without methods" `Quick
      test_projection_schema_without_methods;
    Alcotest.test_case "unknown source" `Quick test_projection_unknown_source
  ]

let () =
  Alcotest.run "factoring"
    [ ("factor-state", suite_state);
      ("augment", suite_augment);
      ("factor-methods", suite_methods);
      ("pipeline", suite_pipeline)
    ]
