open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Value = Tdp_store.Value
module Wal = Tdp_store.Wal
open Helpers

(* Fig. 1 plus a reference-typed attribute, so the op mix covers
   nullify-on-delete and object references. *)
let schema =
  let s = Tdp_paper.Fig1.schema in
  Schema.add_type s
    (Type_def.make
       ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
       (ty "Team"))

let oid = Tdp_store.Oid.of_int
let load_schema src = (Tdp_lang.Elaborate.load_exn src).Tdp_lang.Elaborate.schema

(* The scenario every fault-injection test replays: creations, slot
   writes (with awkward floats), references, and both delete
   policies. *)
let ops : Database.op list =
  [ Op_new
      { oid = oid 1;
        ty = ty "Employee";
        init =
          [ (at "ssn", Value.Int 1);
            (at "name", Value.String "al \"ice\" =#");
            (at "pay_rate", Value.Float (0.1 +. 0.2))
          ]
      };
    Op_set { oid = oid 1; attr = at "hrs_worked"; value = Value.Float 40.0 };
    Op_new { oid = oid 2; ty = ty "Team"; init = [ (at "manager", Value.Ref (oid 1)) ] };
    Op_new { oid = oid 3; ty = ty "Person"; init = [ (at "ssn", Value.Int 3) ] };
    Op_set { oid = oid 1; attr = at "pay_rate"; value = Value.Float nan };
    Op_delete { oid = oid 3; policy = Database.Restrict };
    Op_delete { oid = oid 1; policy = Database.Nullify };
    Op_new { oid = oid 4; ty = ty "Employee"; init = [ (at "ssn", Value.Int 4) ] }
  ]

(* The WAL image of the scenario, plus [dumps.(k)] = the dump of the
   state after the first [k] ops — the oracle for every fault. *)
let fixture () =
  let db = Database.create schema in
  let wal = Buffer.create 512 in
  let dumps = ref [ Dump.to_string db ] in
  List.iteri
    (fun i op ->
      Buffer.add_string wal (Wal.encode ~seq:(i + 1) op);
      Wal.apply db op;
      dumps := Dump.to_string db :: !dumps)
    ops;
  (Buffer.contents wal, Array.of_list (List.rev !dumps))

(* ---- unit: payload and record round-trips -------------------------- *)

let test_payload_roundtrip () =
  List.iteri
    (fun i op ->
      let s = Wal.payload_to_string op in
      let op' = Wal.payload_of_string ~line:1 s in
      Alcotest.(check string)
        (Fmt.str "op %d reprints identically" i)
        s
        (Wal.payload_to_string op'))
    ops

let test_encode_decode () =
  let wal, _ = fixture () in
  let d = Wal.decode wal in
  Alcotest.(check int) "all records decoded" (List.length ops) (List.length d.entries);
  Alcotest.(check int) "next_seq" (List.length ops + 1) d.next_seq;
  Alcotest.(check int) "valid_bytes = length" (String.length wal) d.valid_bytes;
  Alcotest.(check bool) "no corruption" true (d.corruption = None);
  List.iteri
    (fun i (e : Wal.entry) ->
      Alcotest.(check int) (Fmt.str "seq of entry %d" i) (i + 1) e.seq)
    d.entries

let test_decode_degenerate () =
  let d = Wal.decode "" in
  Alcotest.(check int) "empty: no entries" 0 (List.length d.entries);
  Alcotest.(check int) "empty: next_seq 1" 1 d.next_seq;
  Alcotest.(check bool) "empty: clean" true (d.corruption = None);
  let d = Wal.decode "total garbage\n" in
  Alcotest.(check bool) "garbage: corrupt" true (d.corruption <> None);
  Alcotest.(check int) "garbage: zero valid bytes" 0 d.valid_bytes;
  (* a record without its newline is torn, even if otherwise intact *)
  let r1 = Wal.encode ~seq:1 (List.hd ops) in
  let torn = String.sub r1 0 (String.length r1 - 1) in
  let d = Wal.decode torn in
  Alcotest.(check bool) "torn: corrupt" true (d.corruption <> None);
  Alcotest.(check int) "torn: zero valid bytes" 0 d.valid_bytes

let test_decode_sequence_rules () =
  let op = List.hd ops in
  (* a hole in the numbering ends the prefix *)
  let d = Wal.decode (Wal.encode ~seq:1 op ^ Wal.encode ~seq:3 op) in
  Alcotest.(check int) "gap: one entry" 1 (List.length d.entries);
  Alcotest.(check bool) "gap: corrupt" true (d.corruption <> None);
  (* but the base may start anywhere: a checkpointed log resumes high *)
  let d = Wal.decode (Wal.encode ~seq:5 op ^ Wal.encode ~seq:6 op) in
  Alcotest.(check int) "high base: two entries" 2 (List.length d.entries);
  Alcotest.(check int) "high base: next_seq" 7 d.next_seq;
  Alcotest.(check bool) "high base: clean" true (d.corruption = None)

(* ---- fault injection: truncate at every byte offset ----------------- *)

let entries_ending_by entries t =
  List.length (List.filter (fun (e : Wal.entry) -> e.ends_at <= t) entries)

let test_truncation_every_offset () =
  let wal, dumps = fixture () in
  let entries = (Wal.decode wal).entries in
  for t = 0 to String.length wal do
    let r = Wal.recover_text ~schema ~wal:(String.sub wal 0 t) () in
    let k = entries_ending_by entries t in
    Alcotest.(check int) (Fmt.str "replayed after cut at %d" t) k r.replayed;
    Alcotest.(check string)
      (Fmt.str "state after cut at %d" t)
      dumps.(k)
      (Dump.to_string r.db);
    (* mid-record cuts are reported; record-boundary cuts are clean *)
    Alcotest.(check bool)
      (Fmt.str "corruption flag at %d" t)
      (t <> 0 && not (List.exists (fun (e : Wal.entry) -> e.ends_at = t) entries))
      (r.corruption <> None)
  done

(* ---- fault injection: flip a bit at every byte offset --------------- *)

let test_byteflip_every_offset () =
  let wal, dumps = fixture () in
  let entries = (Wal.decode wal).entries in
  let n = List.length entries in
  for t = 0 to String.length wal - 1 do
    let b = Bytes.of_string wal in
    Bytes.set b t (Char.chr (Char.code wal.[t] lxor 0x01));
    let r = Wal.recover_text ~schema ~wal:(Bytes.to_string b) () in
    (* the flip lands inside record j (0-based); CRC-32 catches any
       single-bit error, so exactly the records before j replay *)
    let j = entries_ending_by entries t in
    Alcotest.(check int) (Fmt.str "replayed with flip at %d" t) j r.replayed;
    Alcotest.(check string)
      (Fmt.str "state with flip at %d" t)
      dumps.(j)
      (Dump.to_string r.db);
    Alcotest.(check bool)
      (Fmt.str "flip at %d detected" t)
      (j < n)
      (r.corruption <> None)
  done

(* ---- snapshots and checkpointing ------------------------------------ *)

let test_snapshot_skips_replayed_prefix () =
  let wal, dumps = fixture () in
  let n = List.length ops in
  (* checkpoint at seq 3, but keep the whole WAL: a crash between
     snapshot rename and log truncation must not double-apply 1..3 *)
  let snapshot = "-- wal-seq: 3\n" ^ dumps.(3) in
  let r = Wal.recover_text ~schema ~snapshot ~wal () in
  Alcotest.(check int) "snapshot_seq" 3 r.snapshot_seq;
  Alcotest.(check int) "replayed only the suffix" (n - 3) r.replayed;
  Alcotest.(check int) "last_seq" n r.last_seq;
  Alcotest.(check string) "final state" dumps.(n) (Dump.to_string r.db)

let test_snapshot_wal_gap_detected () =
  let _, dumps = fixture () in
  let snapshot = "-- wal-seq: 3\n" ^ dumps.(3) in
  (* a log that resumes past the snapshot leaves a hole: refuse it *)
  let wal = Wal.encode ~seq:5 (List.nth ops 4) in
  let r = Wal.recover_text ~schema ~snapshot ~wal () in
  Alcotest.(check int) "nothing replayed" 0 r.replayed;
  Alcotest.(check bool) "gap reported" true (r.corruption <> None);
  Alcotest.(check string) "state is the snapshot" dumps.(3) (Dump.to_string r.db)

(* ---- journaled schema evolution ------------------------------------- *)

let evolved_source = "type Extra {\n  x : int;\n}\n"

let test_schema_record_roundtrip () =
  let db = Database.create schema in
  let logged = ref [] in
  Database.set_journal db (Some (fun op -> logged := op :: !logged));
  Database.set_schema ~source:evolved_source db (load_schema evolved_source);
  Database.set_journal db None;
  match !logged with
  | [ op ] ->
      let s = Wal.payload_to_string op in
      let db2 = Database.create schema in
      Wal.apply ~load_schema db2 (Wal.payload_of_string ~line:1 s);
      ignore (Database.new_object db2 (ty "Extra") ~init:[ (at "x", Value.Int 1) ]);
      Alcotest.(check int) "object of the evolved type" 1 (Database.count db2)
  | l -> Alcotest.fail (Fmt.str "expected one journaled op, got %d" (List.length l))

let test_schema_requires_source_when_journaled () =
  let db = Database.create schema in
  Database.set_journal db (Some ignore);
  (match Database.set_schema db (load_schema evolved_source) with
  | () -> Alcotest.fail "set_schema without source should fail when journaled"
  | exception Database.Store_error _ -> ());
  (* and replaying a schema record needs a loader *)
  let db2 = Database.create schema in
  match Wal.apply db2 (Op_set_schema { source = evolved_source }) with
  | () -> Alcotest.fail "apply without load_schema should fail"
  | exception Wal.Wal_error _ -> ()

(* ---- writer: journaling to a real file ------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "tdp_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_writer_end_to_end () =
  with_temp_dir (fun dir ->
      let wal_path = Filename.concat dir "wal.log" in
      let snapshot_path = Filename.concat dir "snapshot.dump" in
      let db = Database.create schema in
      let w = Wal.writer_create ~sync:false ~path:wal_path ~next_seq:1 () in
      Wal.attach w db;
      List.iter (Wal.apply db) ops;
      Database.set_journal db None;
      Wal.close w;
      let expected = Dump.to_string db in
      (* recover from the log alone *)
      let r = Wal.recover ~schema ~snapshot_path ~wal_path () in
      Alcotest.(check int) "replayed all" (List.length ops) r.replayed;
      Alcotest.(check string) "log-only recovery" expected (Dump.to_string r.db);
      (* checkpoint: fold the log into an atomic snapshot, start fresh *)
      Dump.save ~wal_seq:r.last_seq ~path:snapshot_path r.db;
      Wal.close (Wal.writer_create ~path:wal_path ~next_seq:(r.last_seq + 1) ());
      let r2 = Wal.recover ~schema ~snapshot_path ~wal_path () in
      Alcotest.(check int) "nothing to replay" 0 r2.replayed;
      Alcotest.(check int) "seq preserved" r.last_seq r2.last_seq;
      Alcotest.(check string) "snapshot recovery" expected (Dump.to_string r2.db);
      (* a torn tail on disk: repair, then append cleanly *)
      let oc = open_out_gen [ Open_append ] 0o644 wal_path in
      output_string oc "w 99 deadbeef torn";
      close_out oc;
      let r3 = Wal.recover ~schema ~snapshot_path ~wal_path () in
      Alcotest.(check bool) "tear detected" true (r3.corruption <> None);
      Wal.repair ~path:wal_path r3.wal_valid_bytes;
      let w2 = Wal.writer_open ~sync:false ~path:wal_path ~next_seq:(r3.last_seq + 1) () in
      Wal.attach w2 r3.db;
      ignore (Database.new_object r3.db (ty "Person") ~init:[ (at "ssn", Value.Int 9) ]);
      Database.set_journal r3.db None;
      Wal.close w2;
      let r4 = Wal.recover ~schema ~snapshot_path ~wal_path () in
      Alcotest.(check bool) "clean after repair" true (r4.corruption = None);
      Alcotest.(check string)
        "repaired log replays"
        (Dump.to_string r3.db)
        (Dump.to_string r4.db))

let suite =
  [ Alcotest.test_case "payload roundtrip" `Quick test_payload_roundtrip;
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "decode degenerate inputs" `Quick test_decode_degenerate;
    Alcotest.test_case "decode sequence rules" `Quick test_decode_sequence_rules;
    Alcotest.test_case "truncation at every byte offset" `Quick
      test_truncation_every_offset;
    Alcotest.test_case "bit flip at every byte offset" `Quick
      test_byteflip_every_offset;
    Alcotest.test_case "snapshot skips replayed prefix" `Quick
      test_snapshot_skips_replayed_prefix;
    Alcotest.test_case "snapshot/wal gap detected" `Quick
      test_snapshot_wal_gap_detected;
    Alcotest.test_case "schema record roundtrip" `Quick test_schema_record_roundtrip;
    Alcotest.test_case "schema source required when journaled" `Quick
      test_schema_requires_source_when_journaled;
    Alcotest.test_case "writer end to end" `Quick test_writer_end_to_end
  ]

let () = Alcotest.run "wal" [ ("wal", suite) ]
