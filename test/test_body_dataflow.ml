open Tdp_core
open Helpers

(* A tiny schema: B ⪯ A, accessor get_x on A (attr x), gfs f/1, g/1. *)
let base_schema =
  let h = Hierarchy.empty in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ Attribute.make (at "x") Value_type.int ] (ty "A"))
  in
  let h = Hierarchy.add h (Type_def.make ~supers:[ (ty "A", 1) ] (ty "B")) in
  let s = Schema.with_hierarchy Schema.empty h in
  let s =
    Schema.add_method s
      (Method_def.reader ~gf:"get_x" ~id:"get_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:Value_type.int)
  in
  s

let general ?result ~gf ~id params body =
  Method_def.make ~gf ~id
    ~signature:(Signature.make ?result (List.map (fun (x, t) -> (x, ty t)) params))
    (General body)

(* ------------------------------------------------------------------ *)
(* Body traversals                                                     *)
(* ------------------------------------------------------------------ *)

let test_call_sites_nested () =
  let body =
    [ Body.expr (Body.call "f" [ Body.call "g" [ Body.var "a" ] ]);
      Body.if_ (Body.builtin "=" [ Body.var "a"; Body.var "a" ])
        [ Body.expr (Body.call "h" [ Body.var "a" ]) ]
        []
    ]
  in
  Alcotest.(check (list string)) "outermost first" [ "f"; "g"; "h" ]
    (List.map fst (Body.call_sites body))

let test_locals () =
  let body =
    [ Body.local "u" Value_type.int;
      Body.if_ (Body.bool true) [ Body.local "v" Value_type.bool ] [];
      Body.while_ (Body.bool false) [ Body.local "w" Value_type.string ]
    ]
  in
  Alcotest.(check (list string)) "all locals found" [ "u"; "v"; "w" ]
    (List.map fst (Body.locals body))

let test_map_local_types () =
  let body = [ Body.local "g" (Value_type.named (ty "G")) ] in
  let body' =
    Body.map_local_types
      (fun x t -> if x = "g" then Value_type.named (ty "G_hat") else t)
      body
  in
  Alcotest.(check bool) "rewritten" true
    (List.exists
       (fun (x, t) -> x = "g" && Value_type.equal t (Value_type.named (ty "G_hat")))
       (Body.locals body'))

(* ------------------------------------------------------------------ *)
(* Typing                                                              *)
(* ------------------------------------------------------------------ *)

let test_env_of_method () =
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.local "q" Value_type.int; Body.expr (Body.var "p") ]
  in
  let env = Typing.env_of_method m in
  Alcotest.(check bool) "formal typed" true
    (Value_type.equal (Typing.lookup_var env "p") (Value_type.named (ty "A")));
  Alcotest.(check bool) "local typed" true
    (Value_type.equal (Typing.lookup_var env "q") Value_type.int);
  Alcotest.(check bool) "unknown" true
    (Value_type.equal (Typing.lookup_var env "zz") Value_type.Unknown)

let test_type_of_expr () =
  let s = base_schema in
  let env = Typing.SMap.singleton "p" (Value_type.named (ty "A")) in
  Alcotest.(check bool) "literal" true
    (Value_type.equal (Typing.type_of_expr s env (Body.int 3)) Value_type.int);
  Alcotest.(check bool) "gf result" true
    (Value_type.equal
       (Typing.type_of_expr s env (Body.call "get_x" [ Body.var "p" ]))
       Value_type.int);
  Alcotest.(check bool) "comparison is bool" true
    (Value_type.equal
       (Typing.type_of_expr s env (Body.builtin "<" [ Body.int 1; Body.int 2 ]))
       Value_type.bool)

let test_arg_type_names_rejects_prims () =
  let s = base_schema in
  let env = Typing.SMap.empty in
  match Typing.arg_type_names s env ~gf:"get_x" [ Body.int 3 ] with
  | exception Error.E (Non_object_argument { gf; position }) ->
      Alcotest.(check string) "gf" "get_x" gf;
      Alcotest.(check int) "position" 0 position
  | _ -> Alcotest.fail "expected Non_object_argument"

let test_check_method_unbound () =
  let s = base_schema in
  let m = general ~gf:"f" ~id:"f1" [ ("p", "A") ] [ Body.expr (Body.var "zz") ] in
  let s = Schema.add_method s m in
  match Typing.check_method s m with
  | exception Error.E (Unbound_variable { var; _ }) ->
      Alcotest.(check string) "var" "zz" var
  | _ -> Alcotest.fail "expected Unbound_variable"

let test_check_method_unknown_gf () =
  let s = base_schema in
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.expr (Body.call "nope" [ Body.var "p" ]) ]
  in
  let s = Schema.add_method s m in
  match Typing.check_method s m with
  | exception Error.E (Unknown_generic_function g) ->
      Alcotest.(check string) "gf" "nope" g
  | _ -> Alcotest.fail "expected Unknown_generic_function"

let test_check_method_arity () =
  let s = base_schema in
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "p"; Body.var "p" ]) ]
  in
  let s = Schema.add_method s m in
  match Typing.check_method s m with
  | exception Error.E (Arity_mismatch { expected = 1; got = 2; _ }) -> ()
  | _ -> Alcotest.fail "expected Arity_mismatch"

let test_check_method_bad_assignment () =
  (* b := a with B ⪯ A is not allowed (A is not a subtype of B). *)
  let s = base_schema in
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.local "b" (Value_type.named (ty "B")); Body.assign "b" (Body.var "p") ]
  in
  let s = Schema.add_method s m in
  match Typing.check_method s m with
  | exception Error.E (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "expected ill-typed assignment"

let test_check_method_good_assignment () =
  (* a := b with B ⪯ A is fine. *)
  let s = base_schema in
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "B") ]
      [ Body.local "a" (Value_type.named (ty "A")); Body.assign "a" (Body.var "p") ]
  in
  let s = Schema.add_method s m in
  Typing.check_method s m

let test_writer_call_arity () =
  (* Writer calls take the object plus a value. *)
  let s = base_schema in
  let s =
    Schema.add_method s
      (Method_def.writer ~gf:"set_x" ~id:"set_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x"))
  in
  let ok =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.expr (Body.call "set_x" [ Body.var "p"; Body.int 3 ]) ]
  in
  let s = Schema.add_method s ok in
  Typing.check_method s ok;
  let bad =
    general ~gf:"g" ~id:"g1" [ ("p", "A") ]
      [ Body.expr (Body.call "set_x" [ Body.var "p" ]) ]
  in
  let s = Schema.add_method s bad in
  match Typing.check_method s bad with
  | exception Error.E (Arity_mismatch { expected = 2; got = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected writer arity error"

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)
(* ------------------------------------------------------------------ *)

let flow_of m var =
  let f = Dataflow.compute_flow m in
  match Dataflow.SMap.find_opt var f with
  | Some s -> List.sort String.compare (Dataflow.SS.elements s)
  | None -> []

let test_flow_copy_chain () =
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.local "u" (Value_type.named (ty "A")) ~init:(Body.var "p");
        Body.local "v" (Value_type.named (ty "A"));
        Body.assign "v" (Body.var "u")
      ]
  in
  Alcotest.(check (list string)) "p -> u -> v" [ "p" ] (flow_of m "v")

let test_flow_through_loop () =
  (* The copy happens inside a loop body after the use; only a fixpoint
     finds it. *)
  let m =
    general ~gf:"f" ~id:"f1"
      [ ("p", "A"); ("q", "A") ]
      [ Body.local "u" (Value_type.named (ty "A")) ~init:(Body.var "q");
        Body.while_ (Body.bool true)
          [ Body.local "v" (Value_type.named (ty "A")) ~init:(Body.var "u");
            Body.assign "u" (Body.var "p")
          ]
      ]
  in
  Alcotest.(check (list string)) "v reaches both" [ "p"; "q" ] (flow_of m "v")

let test_flow_call_results_fresh () =
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "A") ]
      [ Body.local "u" (Value_type.named (ty "A"))
          ~init:(Body.call "get_x" [ Body.var "p" ])
      ]
  in
  Alcotest.(check (list string)) "call results carry no sources" [] (flow_of m "u")

let test_relevant_calls_fig3_x1 () =
  let s = Tdp_paper.Fig3.schema in
  let cache = Schema_index.of_hierarchy (Schema.hierarchy s) in
  let x1 = Schema.find_method s (key "x" "x1") in
  let rcs = Dataflow.relevant_calls s cache x1 ~source:(ty "A") in
  Alcotest.(check int) "two relevant calls" 2 (List.length rcs);
  List.iter
    (fun (rc : Dataflow.relevant_call) ->
      Alcotest.(check (list int)) (rc.site.gf ^ " positions") [ 0; 1 ]
        rc.relevant_positions)
    rcs

let test_relevant_calls_excludes_unrelated () =
  (* f(p : A, q : Z) where Z is unrelated to the source A: the call
     h(q) is not relevant. *)
  let s = base_schema in
  let s = Schema.map_hierarchy s (fun h -> Hierarchy.add h (Type_def.make (ty "Z"))) in
  let h1 =
    general ~gf:"h" ~id:"h1" [ ("z", "Z") ] [ Body.expr (Body.var "z") ]
  in
  let s = Schema.add_method s h1 in
  let m =
    general ~gf:"f" ~id:"f1"
      [ ("p", "A"); ("q", "Z") ]
      [ Body.expr (Body.call "h" [ Body.var "q" ]);
        Body.expr (Body.call "get_x" [ Body.var "p" ])
      ]
  in
  let s = Schema.add_method s m in
  let cache = Schema_index.of_hierarchy (Schema.hierarchy s) in
  let rcs = Dataflow.relevant_calls s cache m ~source:(ty "A") in
  Alcotest.(check (list string)) "only get_x is relevant" [ "get_x" ]
    (List.map (fun (rc : Dataflow.relevant_call) -> rc.site.gf) rcs)

let test_assigned_types () =
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "B") ]
      ~result:(Value_type.named (ty "A"))
      [ Body.local "g" (Value_type.named (ty "A"));
        Body.assign "g" (Body.var "p");
        Body.return_ (Body.var "g")
      ]
  in
  let y = Dataflow.assigned_types m ~rebound:(Dataflow.SS.singleton "p") in
  Alcotest.check name_set "Y = {A}" (Type_name.Set.singleton (ty "A")) y;
  Alcotest.(check bool) "returns rebound" true
    (Dataflow.returns_rebound m ~rebound:(Dataflow.SS.singleton "p"));
  Alcotest.(check bool) "other formal not rebound" false
    (Dataflow.returns_rebound m ~rebound:(Dataflow.SS.singleton "q"))

let test_retypable_locals () =
  let m =
    general ~gf:"f" ~id:"f1" [ ("p", "B") ]
      [ Body.local "g" (Value_type.named (ty "A"));
        Body.local "h" (Value_type.named (ty "A"));
        Body.assign "g" (Body.var "p")
      ]
  in
  let l =
    Dataflow.retypable_locals m
      ~rebound:(Dataflow.SS.singleton "p")
      ~types:(Type_name.Set.singleton (ty "A"))
  in
  (* h is declared A but never receives p, so only g is re-typed. *)
  Alcotest.(check (list string)) "only g" [ "g" ] (List.map fst l)

let suite_body =
  [ Alcotest.test_case "call sites, nested" `Quick test_call_sites_nested;
    Alcotest.test_case "locals" `Quick test_locals;
    Alcotest.test_case "map_local_types" `Quick test_map_local_types
  ]

let suite_typing =
  [ Alcotest.test_case "env of method" `Quick test_env_of_method;
    Alcotest.test_case "type of expr" `Quick test_type_of_expr;
    Alcotest.test_case "prims rejected as call args" `Quick
      test_arg_type_names_rejects_prims;
    Alcotest.test_case "unbound variable" `Quick test_check_method_unbound;
    Alcotest.test_case "unknown gf" `Quick test_check_method_unknown_gf;
    Alcotest.test_case "call arity" `Quick test_check_method_arity;
    Alcotest.test_case "ill-typed assignment" `Quick test_check_method_bad_assignment;
    Alcotest.test_case "well-typed assignment" `Quick test_check_method_good_assignment;
    Alcotest.test_case "writer call arity" `Quick test_writer_call_arity
  ]

let suite_dataflow =
  [ Alcotest.test_case "copy chain" `Quick test_flow_copy_chain;
    Alcotest.test_case "loop fixpoint" `Quick test_flow_through_loop;
    Alcotest.test_case "call results fresh" `Quick test_flow_call_results_fresh;
    Alcotest.test_case "relevant calls: fig3 x1" `Quick test_relevant_calls_fig3_x1;
    Alcotest.test_case "relevant calls: unrelated excluded" `Quick
      test_relevant_calls_excludes_unrelated;
    Alcotest.test_case "assigned types (Y)" `Quick test_assigned_types;
    Alcotest.test_case "retypable locals" `Quick test_retypable_locals
  ]

let () =
  Alcotest.run "body-dataflow"
    [ ("body", suite_body); ("typing", suite_typing); ("dataflow", suite_dataflow) ]
