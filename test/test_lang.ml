open Tdp_core
module Lexer = Tdp_lang.Lexer
module Parser = Tdp_lang.Parser
module Elaborate = Tdp_lang.Elaborate
module Printer = Tdp_lang.Printer
module View = Tdp_algebra.View
open Helpers

let fig1_src =
  {|
// The paper's Figure 1, in the schema language.
type Person {
  ssn : int;
  name : string;
  date_of_birth : date;
}

type Employee : Person(1) {
  pay_rate : float;
  hrs_worked : float;
}

reader get_ssn(self : Person) -> ssn;
reader get_name(self : Person) -> name;
reader get_date_of_birth(self : Person) -> date_of_birth;
reader get_pay_rate(self : Employee) -> pay_rate;
reader get_hrs_worked(self : Employee) -> hrs_worked;
writer set_pay_rate(self : Employee) -> pay_rate;

method age(p : Person) : int {
  return years_since(get_date_of_birth(p));
}

method income(e : Employee) : float {
  return get_pay_rate(e) * get_hrs_worked(e);
}

method promote(e : Employee) : bool {
  return years_since(get_date_of_birth(e)) >= 5 and get_pay_rate(e) < 100;
}

view EmpView = project Employee on [ssn, date_of_birth, pay_rate];
view Seniors = select EmpView where date_of_birth <= 1980;
|}

let test_parse_and_elaborate () =
  let r = Elaborate.load_exn fig1_src in
  let h = Schema.hierarchy r.schema in
  Alcotest.(check int) "two types" 2 (Hierarchy.cardinal h);
  Alcotest.(check bool) "Employee ⪯ Person" true
    (Hierarchy.subtype h (ty "Employee") (ty "Person"));
  Alcotest.(check int) "nine methods" 9 (List.length (Schema.all_methods r.schema));
  Alcotest.(check int) "two views" 2 (List.length r.views)

let test_apply_views () =
  let r = Elaborate.load_exn fig1_src in
  let schema, derived = Elaborate.apply_views_exn r in
  Alcotest.(check (list string)) "view types" [ "EmpView"; "Seniors" ]
    (List.map fst derived);
  let h = Schema.hierarchy schema in
  Alcotest.(check bool) "EmpView exists" true (Hierarchy.mem h (ty "EmpView"));
  Alcotest.check attr_names "EmpView state"
    (List.map at [ "date_of_birth"; "pay_rate"; "ssn" ])
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "EmpView")));
  (* Seniors selects from EmpView: a subtype with the same state *)
  Alcotest.(check bool) "Seniors ⪯ EmpView" true
    (Hierarchy.subtype h (ty "Seniors") (ty "EmpView"))

let test_method_ids () =
  let src =
    {|
type A { x : int; }
reader get_x(self : A) -> x;
method u#u1(a : A) : int { return get_x(a); }
method u#u2(a : A) : int { return get_x(a) + 1; }
|}
  in
  let r = Elaborate.load_exn src in
  let g = Schema.find_gf r.schema "u" in
  Alcotest.(check (list string)) "two methods of u" [ "u1"; "u2" ]
    (List.map Method_def.id (Generic_function.methods g))

let test_control_flow_and_writer_calls () =
  let src =
    {|
type A { x : int; }
reader get_x(self : A) -> x;
writer set_x(self : A) -> x;
method bump(a : A) : int {
  var n : int := get_x(a);
  while n < 10 { n := n + 1; }
  if n == 10 { set_x(a, n); } else { set_x(a, 0 - n); }
  return n;
}
|}
  in
  let r = Elaborate.load_exn src in
  let m = Schema.find_method r.schema (key "bump" "bump") in
  match Method_def.body m with
  | Some body ->
      Alcotest.(check int) "four statements" 4 (List.length body) |> fun () ->
      Alcotest.(check (list string)) "call sites"
        [ "get_x"; "set_x"; "set_x" ]
        (List.map fst (Body.call_sites body))
  | None -> Alcotest.fail "bump has no body"

let test_precedence_of_operators () =
  let src =
    {|
type A { x : int; }
reader get_x(self : A) -> x;
method f(a : A) : int { return 1 + 2 * get_x(a); }
|}
  in
  let r = Elaborate.load_exn src in
  let m = Schema.find_method r.schema (key "f" "f") in
  match Method_def.body m with
  | Some [ Body.Return (Some (Body.Builtin { op = "+"; args = [ _; Body.Builtin { op = "*"; _ } ] })) ] ->
      ()
  | _ -> Alcotest.fail "1 + 2 * x must parse as 1 + (2 * x)"

let check_parse_error src expect_line =
  match Elaborate.load_exn src with
  | exception Error.E (Parse_error { line; _ }) ->
      Alcotest.(check int) "error line" expect_line line
  | exception Error.E _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_errors () =
  check_parse_error "type A { x int; }" 1;
  check_parse_error "type A { x : int; }\nmethod f(a : A) { return }" 2;
  check_parse_error "vie X = Y;" 1

(* A file cut off mid-declaration must report a positioned parse error
   naming EOF — never crash past the end of the token stream. *)
let test_truncated_file () =
  let check src =
    match Parser.parse src with
    | Error (Parse_error { line; col; _ }) ->
        Alcotest.(check bool) (Fmt.str "position for %S" src) true (line >= 1 && col >= 1)
    | Error e -> Alcotest.failf "expected Parse_error for %S, got %a" src Error.pp e
    | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  in
  check "type Person {";
  check "type Person { ssn : int;";
  check "type Person { ssn";
  check "method f(a : A) : int { return";
  check "method f(a : A) : int { return get_x(";
  check "view V = project Employee on [ssn,";
  check "view V = select";
  check "reader get_x(self";
  (* sanity: the empty program still parses *)
  match Parser.parse "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty source must parse to no items"

let test_integer_overflow () =
  match Parser.parse_string "method f() { return 99999999999999999999999; }" with
  | exception Error.E (Parse_error { message; _ }) ->
      Alcotest.(check bool) "mentions range" true
        (let n = "out of range" in
         let rec go k =
           k + String.length n <= String.length message
           && (String.sub message k (String.length n) = n || go (k + 1))
         in
         go 0)
  | _ -> Alcotest.fail "expected Parse_error on overflow"

let test_unterminated_string () =
  match Parser.parse_string {|method f() { return "oops; }|} with
  | exception Error.E (Parse_error _) -> ()
  | _ -> Alcotest.fail "expected unterminated string error"

let test_lexer_comments_and_positions () =
  let toks = Lexer.tokenize "// hello\ntype" in
  match toks with
  | [ { token = KW "type"; line = 2; col = 1 }; { token = EOF; _ } ] -> ()
  | _ -> Alcotest.fail "comment skipping or position tracking broken"

let test_elaborator_checks () =
  (* Unknown supertype must be rejected by validation. *)
  (match Elaborate.load_exn "type A : Ghost(1) { x : int; }" with
  | exception Error.E (Unknown_type _) -> ()
  | _ -> Alcotest.fail "expected Unknown_type");
  (* Accessor on an attribute the type does not have; the error carries
     the declaration's position. *)
  match
    Elaborate.load_exn "type A { x : int; }\ntype B { y : int; }\nreader g(self : B) -> x;"
  with
  | exception Error.E (At { line = 3; col = 1; error = Accessor_attr_not_inherited _ }) ->
      ()
  | _ -> Alcotest.fail "expected positioned Accessor_attr_not_inherited"

(* Round-trip: print → parse → print must be a fixpoint, and the
   re-parsed schema must be structurally identical. *)
let roundtrip schema =
  let src = Printer.print schema in
  let r = Elaborate.load_exn src in
  Alcotest.(check bool) "hierarchy round-trips" true
    (Hierarchy.equal (Schema.hierarchy schema) (Schema.hierarchy r.schema));
  let src2 = Printer.print r.schema in
  Alcotest.(check string) "printing is a fixpoint" src src2

let test_roundtrip_fig1 () = roundtrip Tdp_paper.Fig1.schema
let test_roundtrip_fig3 () = roundtrip Tdp_paper.Fig3.schema_with_z

let test_roundtrip_parsed () =
  let r = Elaborate.load_exn fig1_src in
  roundtrip r.schema

let test_float_and_negative_literals () =
  let src =
    {|
type A { x : float; }
reader get_x(self : A) -> x;
method f(a : A) : float { return get_x(a) * 2.5 + 40.0; }
view V = select A where x >= -1.5;
|}
  in
  let r = Elaborate.load_exn src in
  (* float literals round-trip through the printer *)
  let printed = Printer.print ~views:r.views r.schema in
  let r2 = Elaborate.load_exn printed in
  Alcotest.(check string) "fixpoint with floats" printed
    (Printer.print ~views:r2.views r2.schema);
  match List.assoc "V" r2.views with
  | View.Select (_, Tdp_algebra.Pred.Cmp { value = Body.Float f; _ }) ->
      Alcotest.(check (float 0.0001)) "negative float" (-1.5) f
  | _ -> Alcotest.fail "predicate lost its literal"

let test_view_on_unknown_base () =
  let src = {|
type A { x : int; }
view V = project Ghost on [x];
|} in
  let r = Elaborate.load_exn src in
  match Elaborate.apply_views r with
  | Error (Unknown_type _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok _ -> Alcotest.fail "expected Unknown_type"

let test_keyword_not_identifier () =
  match Parser.parse_string "type select { x : int; }" with
  | exception Error.E (Parse_error _) -> ()
  | _ -> Alcotest.fail "keywords must not be identifiers"

let test_empty_program () =
  let r = Elaborate.load_exn "  // nothing here\n" in
  Alcotest.(check int) "no types" 0 (Hierarchy.cardinal (Schema.hierarchy r.schema))

let test_nested_parens_and_not () =
  let src =
    {|
type A { x : int; y : int; }
reader get_x(self : A) -> x;
reader get_y(self : A) -> y;
method f(a : A) : bool {
  return not ((get_x(a) + 1) * 2 > get_y(a) or get_x(a) == 0);
}
|}
  in
  let r = Elaborate.load_exn src in
  Typing.check_all_methods r.schema

let test_generalize_view_syntax () =
  let src =
    {|
type P { pid : int; }
type S : P(1) { gpa : float; }
type I : P(1) { salary : float; }
reader get_pid(self : P) -> pid;
view Everyone = generalize S with I;
|}
  in
  let r = Elaborate.load_exn src in
  (match List.assoc "Everyone" r.views with
  | View.Generalize (View.Base a, View.Base b) ->
      Alcotest.(check (pair string string))
        "operands" ("S", "I")
        (Type_name.to_string a, Type_name.to_string b)
  | _ -> Alcotest.fail "expected a generalize view");
  let schema, derived = Elaborate.apply_views_exn r in
  Alcotest.(check (list string)) "derived" [ "Everyone" ] (List.map fst derived);
  let h = Schema.hierarchy schema in
  Alcotest.(check bool) "S ⪯ Everyone" true
    (Hierarchy.subtype h (ty "S") (ty "Everyone"));
  Alcotest.(check bool) "I ⪯ Everyone" true
    (Hierarchy.subtype h (ty "I") (ty "Everyone"));
  Alcotest.check attr_names "state = common" [ at "pid" ]
    (Hierarchy.all_attribute_names h (ty "Everyone"))

let test_join_view_syntax () =
  let src =
    {|
type S { gpa : float; }
type I { salary : float; }
view Working = join S with I;
|}
  in
  let r = Elaborate.load_exn src in
  (match List.assoc "Working" r.views with
  | View.Join (View.Base a, View.Base b) ->
      Alcotest.(check (pair string string))
        "operands" ("S", "I")
        (Type_name.to_string a, Type_name.to_string b)
  | _ -> Alcotest.fail "expected a join view");
  (* the view declaration's position is recorded for diagnostics *)
  Alcotest.(check (option (pair int int)))
    "position" (Some (4, 1))
    (List.assoc_opt "Working" r.view_positions);
  (* join views print and re-parse to the same expression *)
  let printed = Printer.print ~views:r.views r.schema in
  let r2 = Elaborate.load_exn printed in
  Alcotest.(check string) "fixpoint" printed
    (Printer.print ~views:r2.views r2.schema);
  let schema, derived = Elaborate.apply_views_exn r in
  Alcotest.(check (list string)) "derived" [ "Working" ] (List.map fst derived);
  let h = Schema.hierarchy schema in
  Alcotest.(check bool) "Working ⪯ S" true
    (Hierarchy.subtype h (ty "Working") (ty "S"));
  Alcotest.(check bool) "Working ⪯ I" true
    (Hierarchy.subtype h (ty "Working") (ty "I"));
  Alcotest.check attr_names "state = union" [ at "gpa"; at "salary" ]
    (List.sort Attr_name.compare (Hierarchy.all_attribute_names h (ty "Working")))

let test_print_views () =
  let r = Elaborate.load_exn fig1_src in
  let src = Printer.print ~views:r.views r.schema in
  let r2 = Elaborate.load_exn src in
  Alcotest.(check int) "views survive" 2 (List.length r2.views);
  match (List.assoc "Seniors" r2.views : View.expr) with
  | Select (Base n, _) ->
      Alcotest.(check string) "select base" "EmpView" (Type_name.to_string n)
  | _ -> Alcotest.fail "Seniors must be a selection over EmpView"

let suite =
  [ Alcotest.test_case "parse + elaborate fig1" `Quick test_parse_and_elaborate;
    Alcotest.test_case "apply views" `Quick test_apply_views;
    Alcotest.test_case "method ids (#)" `Quick test_method_ids;
    Alcotest.test_case "control flow + writer calls" `Quick
      test_control_flow_and_writer_calls;
    Alcotest.test_case "operator precedence" `Quick test_precedence_of_operators;
    Alcotest.test_case "parse errors with positions" `Quick test_parse_errors;
    Alcotest.test_case "truncated file" `Quick test_truncated_file;
    Alcotest.test_case "integer overflow" `Quick test_integer_overflow;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
    Alcotest.test_case "comments and positions" `Quick test_lexer_comments_and_positions;
    Alcotest.test_case "elaborator checks" `Quick test_elaborator_checks;
    Alcotest.test_case "roundtrip fig1" `Quick test_roundtrip_fig1;
    Alcotest.test_case "roundtrip fig3+z" `Quick test_roundtrip_fig3;
    Alcotest.test_case "roundtrip parsed source" `Quick test_roundtrip_parsed;
    Alcotest.test_case "float and negative literals" `Quick
      test_float_and_negative_literals;
    Alcotest.test_case "unknown view base" `Quick test_view_on_unknown_base;
    Alcotest.test_case "keyword not identifier" `Quick test_keyword_not_identifier;
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "nested parens and not" `Quick test_nested_parens_and_not;
    Alcotest.test_case "generalize view syntax" `Quick test_generalize_view_syntax;
    Alcotest.test_case "join view syntax" `Quick test_join_view_syntax;
    Alcotest.test_case "views print and re-parse" `Quick test_print_views
  ]

let () = Alcotest.run "lang" [ ("lang", suite) ]
