open Tdp_core
open Helpers

let attr n = Attribute.make (at n) Value_type.int

(* Diamond: D ⪯ B ⪯ A, D ⪯ C ⪯ A. *)
let diamond () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "a1"; attr "a2" ] (ty "A")) in
  let h =
    Hierarchy.add h (Type_def.make ~attrs:[ attr "b1" ] ~supers:[ (ty "A", 1) ] (ty "B"))
  in
  let h =
    Hierarchy.add h (Type_def.make ~attrs:[ attr "c1" ] ~supers:[ (ty "A", 1) ] (ty "C"))
  in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ attr "d1" ]
         ~supers:[ (ty "B", 1); (ty "C", 2) ]
         (ty "D"))
  in
  h

let test_add_duplicate () =
  let h = diamond () in
  match Hierarchy.add h (Type_def.make (ty "A")) with
  | exception Error.E (Duplicate_type n) ->
      Alcotest.(check string) "dup name" "A" (Type_name.to_string n)
  | _ -> Alcotest.fail "expected Duplicate_type"

let test_find_unknown () =
  let h = diamond () in
  (match Hierarchy.find_opt h (ty "Z") with
  | None -> ()
  | Some _ -> Alcotest.fail "Z should not exist");
  match Hierarchy.find h (ty "Z") with
  | exception Error.E (Unknown_type _) -> ()
  | _ -> Alcotest.fail "expected Unknown_type"

let test_subtype_reflexive_transitive () =
  let h = diamond () in
  Alcotest.(check bool) "A ⪯ A" true (Hierarchy.subtype h (ty "A") (ty "A"));
  Alcotest.(check bool) "D ⪯ A" true (Hierarchy.subtype h (ty "D") (ty "A"));
  Alcotest.(check bool) "D ⪯ B" true (Hierarchy.subtype h (ty "D") (ty "B"));
  Alcotest.(check bool) "A ⪯ D" false (Hierarchy.subtype h (ty "A") (ty "D"));
  Alcotest.(check bool) "B ⪯ C" false (Hierarchy.subtype h (ty "B") (ty "C"));
  Alcotest.(check bool) "proper D ⪯ D" false
    (Hierarchy.proper_subtype h (ty "D") (ty "D"));
  Alcotest.(check bool) "supertype A ⪰ D" true
    (Hierarchy.supertype h (ty "A") (ty "D"))

let test_ancestors_descendants () =
  let h = diamond () in
  Alcotest.check name_set "ancestors of D"
    (Type_name.Set.of_list [ ty "A"; ty "B"; ty "C" ])
    (Hierarchy.ancestors h (ty "D"));
  Alcotest.check name_set "descendants of A"
    (Type_name.Set.of_list [ ty "B"; ty "C"; ty "D" ])
    (Hierarchy.descendants h (ty "A"));
  Alcotest.check name_set "ancestors of A" Type_name.Set.empty
    (Hierarchy.ancestors h (ty "A"))

let test_inherit_once () =
  (* A's attributes must appear exactly once in D's cumulative state
     even though D reaches A through both B and C. *)
  let h = diamond () in
  let names =
    List.map Attr_name.to_string (Hierarchy.all_attribute_names h (ty "D"))
  in
  Alcotest.(check (list string))
    "cumulative state of D, precedence order"
    [ "d1"; "b1"; "a1"; "a2"; "c1" ] names

let test_precedence_order () =
  let h = diamond () in
  Alcotest.(check (list string))
    "precedence-first closure of D"
    [ "D"; "B"; "A"; "C" ]
    (List.map Type_name.to_string (Hierarchy.precedence_order h (ty "D")))

let test_attr_owner () =
  let h = diamond () in
  Alcotest.(check (option string)) "owner of a1" (Some "A")
    (Option.map Type_name.to_string (Hierarchy.attr_owner h (at "a1")));
  Alcotest.(check (option string)) "owner of zz" None
    (Option.map Type_name.to_string (Hierarchy.attr_owner h (at "zz")))

let test_available_at () =
  let h = diamond () in
  Alcotest.check attr_names "available at B preserves query order"
    [ at "b1"; at "a2" ]
    (Hierarchy.available_at h (ty "B") [ at "d1"; at "b1"; at "a2" ])

let test_move_attr () =
  let h = diamond () in
  let h = Hierarchy.add h (Type_def.make (ty "A_hat")) in
  let h = Hierarchy.move_attr h ~attr:(at "a2") ~from_:(ty "A") ~to_:(ty "A_hat") in
  Alcotest.(check bool) "a2 gone from A" false
    (Type_def.has_local_attr (Hierarchy.find h (ty "A")) (at "a2"));
  Alcotest.(check bool) "a2 now at A_hat" true
    (Type_def.has_local_attr (Hierarchy.find h (ty "A_hat")) (at "a2"));
  match Hierarchy.move_attr h ~attr:(at "a2") ~from_:(ty "A") ~to_:(ty "A_hat") with
  | exception Error.E (Attribute_not_available _) -> ()
  | _ -> Alcotest.fail "moving a non-local attribute must fail"

let test_add_super_errors () =
  let h = diamond () in
  (match Hierarchy.add_super h ~sub:(ty "D") ~super:(ty "B") ~prec:9 with
  | exception Error.E (Duplicate_super _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_super");
  match Hierarchy.add_super h ~sub:(ty "D") ~super:(ty "Z") ~prec:1 with
  | exception Error.E (Unknown_type _) -> ()
  | _ -> Alcotest.fail "expected Unknown_type"

let test_fresh_name () =
  let h = diamond () in
  Alcotest.(check string) "first" "A_hat"
    (Type_name.to_string (Hierarchy.fresh_name h (ty "A")));
  let h = Hierarchy.add h (Type_def.make (ty "A_hat")) in
  Alcotest.(check string) "second" "A_hat2"
    (Type_name.to_string (Hierarchy.fresh_name h (ty "A")))

let test_roots_leaves () =
  let h = diamond () in
  Alcotest.(check (list string)) "roots" [ "A" ]
    (List.map Type_name.to_string (Hierarchy.roots h));
  Alcotest.(check (list string)) "leaves" [ "D" ]
    (List.map Type_name.to_string (Hierarchy.leaves h))

let test_cycle_detection () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make (ty "A")) in
  let h = Hierarchy.add h (Type_def.make ~supers:[ (ty "A", 1) ] (ty "B")) in
  (* create a cycle A -> B by raw update *)
  let h = Hierarchy.update h (ty "A") (fun d -> Type_def.add_super d (ty "B") 1) in
  match Hierarchy.validate_exn h with
  | exception Error.E (Cycle _) -> ()
  | _ -> Alcotest.fail "expected Cycle"

let test_duplicate_attr_detection () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "x" ] (ty "A")) in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "x" ] (ty "B")) in
  match Hierarchy.validate_exn h with
  | exception Error.E (Duplicate_attribute _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_attribute"

let test_duplicate_precedence_detection () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make (ty "A")) in
  let h = Hierarchy.add h (Type_def.make (ty "B")) in
  let h =
    Hierarchy.add h (Type_def.make ~supers:[ (ty "A", 1); (ty "B", 1) ] (ty "C"))
  in
  match Hierarchy.validate_exn h with
  | exception Error.E (Duplicate_precedence _) -> ()
  | _ -> Alcotest.fail "expected Duplicate_precedence"

let test_missing_super_detection () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~supers:[ (ty "Ghost", 1) ] (ty "A")) in
  match Hierarchy.validate_exn h with
  | exception Error.E (Unknown_type _) -> ()
  | _ -> Alcotest.fail "expected Unknown_type"

let test_self_super () =
  match Type_def.add_super (Type_def.make (ty "A")) (ty "A") 1 with
  | exception Error.E (Self_super _) -> ()
  | _ -> Alcotest.fail "expected Self_super"

let test_equal () =
  let h1 = diamond () and h2 = diamond () in
  Alcotest.(check bool) "equal to itself" true (Hierarchy.equal h1 h2);
  let h3 = Hierarchy.update h2 (ty "A") (fun d -> Type_def.remove_attr d (at "a1")) in
  Alcotest.(check bool) "attr removal detected" false (Hierarchy.equal h1 h3)

let test_supers_sorted () =
  let def =
    Type_def.make ~supers:[ (ty "X", 3); (ty "Y", 1); (ty "Z", 2) ] (ty "W")
  in
  Alcotest.(check (list string)) "ascending precedence" [ "Y"; "Z"; "X" ]
    (List.map (fun (n, _) -> Type_name.to_string n) (Type_def.supers def))

let test_subtype_cache () =
  let h = diamond () in
  let c = Schema_index.of_hierarchy h in
  Alcotest.(check bool) "cached D ⪯ A" true (Schema_index.subtype c (ty "D") (ty "A"));
  Alcotest.(check bool) "cached A ⪯̸ D" false (Schema_index.subtype c (ty "A") (ty "D"));
  Alcotest.(check bool) "repeat (memo hit)" true
    (Schema_index.subtype c (ty "D") (ty "A"))

let suite =
  [ Alcotest.test_case "duplicate type" `Quick test_add_duplicate;
    Alcotest.test_case "unknown type" `Quick test_find_unknown;
    Alcotest.test_case "subtype relation" `Quick test_subtype_reflexive_transitive;
    Alcotest.test_case "ancestors/descendants" `Quick test_ancestors_descendants;
    Alcotest.test_case "inherit once" `Quick test_inherit_once;
    Alcotest.test_case "precedence order" `Quick test_precedence_order;
    Alcotest.test_case "attr owner" `Quick test_attr_owner;
    Alcotest.test_case "available_at" `Quick test_available_at;
    Alcotest.test_case "move_attr" `Quick test_move_attr;
    Alcotest.test_case "add_super errors" `Quick test_add_super_errors;
    Alcotest.test_case "fresh_name" `Quick test_fresh_name;
    Alcotest.test_case "roots and leaves" `Quick test_roots_leaves;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "duplicate attribute" `Quick test_duplicate_attr_detection;
    Alcotest.test_case "duplicate precedence" `Quick test_duplicate_precedence_detection;
    Alcotest.test_case "missing supertype" `Quick test_missing_super_detection;
    Alcotest.test_case "self supertype" `Quick test_self_super;
    Alcotest.test_case "structural equality" `Quick test_equal;
    Alcotest.test_case "supers sorted by precedence" `Quick test_supers_sorted;
    Alcotest.test_case "subtype cache" `Quick test_subtype_cache
  ]

let () = Alcotest.run "hierarchy" [ ("hierarchy", suite) ]
