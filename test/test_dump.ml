open Tdp_core
module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Value = Tdp_store.Value
open Helpers

let schema_with_refs =
  let s = Tdp_paper.Fig1.schema in
  Schema.add_type s
    (Type_def.make
       ~attrs:[ Attribute.make (at "manager") (Value_type.named (ty "Employee")) ]
       (ty "Team"))

let sample_db () =
  let db = Database.create schema_with_refs in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int 1);
          (at "name", Value.String "al \"ice\"");
          (at "date_of_birth", Value.Date 1990);
          (at "pay_rate", Value.Float 55.5);
          (at "hrs_worked", Value.Float 10.0)
        ]
  in
  let _team =
    Database.new_object db (ty "Team") ~init:[ (at "manager", Value.Ref alice) ]
  in
  let _bob = Database.new_object db (ty "Person") ~init:[ (at "ssn", Value.Int 2) ] in
  db

let test_roundtrip () =
  let db = sample_db () in
  let text = Dump.to_string db in
  let db2 = Database.create schema_with_refs in
  let oids = Dump.load_into db2 text in
  Alcotest.(check int) "three objects" 3 (List.length oids);
  Alcotest.(check string) "dump is a fixpoint" text (Dump.to_string db2);
  (* slots survive, including refs and escaped strings *)
  List.iter
    (fun (o : Database.obj) ->
      let o2 = Database.find db2 o.oid in
      Alcotest.(check bool)
        (Fmt.str "slots of %a" Tdp_store.Oid.pp o.oid)
        true
        (Attr_name.Map.equal Value.equal o.slots o2.slots))
    (Database.objects db)

let test_forward_references () =
  (* the team (#1) references the employee (#2) defined later *)
  let text =
    {|obj #1 Team manager=#2
obj #2 Employee ssn=9 pay_rate=1.0
|}
  in
  let db = Database.create schema_with_refs in
  ignore (Dump.load_into db text);
  Alcotest.(check bool) "forward ref resolved" true
    (Value.equal
       (Database.get_attr db (Tdp_store.Oid.of_int 1) (at "manager"))
       (Value.Ref (Tdp_store.Oid.of_int 2)))

let test_fresh_oids_after_load () =
  let db = Database.create schema_with_refs in
  ignore (Dump.load_into db "obj #7 Person ssn=1\n");
  let fresh = Database.new_object db (ty "Person") ~init:[] in
  Alcotest.(check bool) "fresh oid beyond restored ones" true
    (Tdp_store.Oid.to_int fresh > 7)

let check_error text expect_line =
  let db = Database.create schema_with_refs in
  match Dump.load_into db text with
  | exception Dump.Parse_error { line; _ } ->
      Alcotest.(check int) "line" expect_line line
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  check_error "obj Person ssn=1" 1;
  check_error "obj #1 Person ssn=notavalue" 1;
  check_error "obj #1 Person ssn 1" 1;
  check_error "-- ok\nblah #2" 2;
  check_error "obj #1 Person ssn=1\nobj #1 Person ssn=2" 2;
  check_error "obj #1 Nope x=1" 1;
  check_error {|obj #1 Person name="unterminated|} 1

let test_comments_and_blanks () =
  let db = Database.create schema_with_refs in
  let oids =
    Dump.load_into db "-- a comment\n\n  obj #1 Person ssn=3  \n\n-- end\n"
  in
  Alcotest.(check int) "one object" 1 (List.length oids)

let test_value_syntax () =
  List.iter
    (fun (s, v) ->
      Alcotest.(check bool) s true (Value.equal (Dump.value_of_string 1 s) v))
    [ ("42", Value.Int 42);
      ("-3", Value.Int (-3));
      ("42.5", Value.Float 42.5);
      ("true", Value.Bool true);
      ("false", Value.Bool false);
      ("null", Value.Null);
      ("year:1990", Value.Date 1990);
      ("#12", Value.Ref (Tdp_store.Oid.of_int 12));
      ({|"hi"|}, Value.String "hi")
    ];
  (* printing inverts parsing *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Dump.value_to_string v)
        true
        (Value.equal (Dump.value_of_string 1 (Dump.value_to_string v)) v))
    [ Value.Int 5; Value.Float 1.25; Value.String "a b\"c"; Value.Bool false;
      Value.Date 2001; Value.Ref (Tdp_store.Oid.of_int 3); Value.Null
    ]

(* ---- float round-trips (lossy %.12g regression) -------------------- *)

let test_float_roundtrip_exact () =
  List.iter
    (fun f ->
      let s = Dump.value_to_string (Value.Float f) in
      match Dump.value_of_string 1 s with
      | Value.Float f' ->
          Alcotest.(check int64)
            (Fmt.str "bits of %s" s)
            (Int64.bits_of_float f) (Int64.bits_of_float f')
      | _ -> Alcotest.fail (Fmt.str "%s did not parse as a float" s))
    [ 0.1 +. 0.2;  (* the classic %.12g casualty: reloads as 0.3 *)
      0.1;
      1.0 /. 3.0;
      4.9e-324;  (* smallest subnormal *)
      1.7976931348623157e308;  (* max finite *)
      -0.0;
      1e22
    ]

let test_nonfinite_floats () =
  List.iter
    (fun (f, s) ->
      Alcotest.(check string) "prints" s (Dump.value_to_string (Value.Float f));
      Alcotest.(check bool) (Fmt.str "%s parses" s) true
        (Value.equal (Dump.value_of_string 1 s) (Value.Float f)))
    [ (nan, "nan"); (infinity, "inf"); (neg_infinity, "-inf") ]

(* ---- non-positive OIDs (allocator-corruption regression) ------------ *)

let test_nonpositive_oids_rejected () =
  check_error "obj #0 Person ssn=1" 1;
  check_error "obj #-3 Person ssn=1" 1;
  check_error "obj #1 Person ssn=1\nobj #0 Person ssn=2" 2;
  (* references too: a stored #0 could never be resolved *)
  check_error "obj #1 Team manager=#0" 1;
  check_error "obj #1 Team manager=#-2" 1

(* ---- exhaustive round-trip property --------------------------------- *)

(* A two-type schema covering every value kind, including a
   self-referential attribute so generated databases contain reference
   cycles. *)
let rt_schema =
  let attr n vt = Attribute.make (at n) vt in
  Schema.empty
  |> fun s ->
  Schema.add_type s
    (Type_def.make
       ~attrs:
         [ attr "ai" Value_type.int;
           attr "af" Value_type.float;
           attr "astr" Value_type.string;
           attr "ab" Value_type.bool;
           attr "ad" Value_type.date;
           attr "aref" (Value_type.named (ty "T"))
         ]
       (ty "T"))
  |> fun s ->
  Schema.add_type s
    (Type_def.make
       ~attrs:[ Attribute.make (at "au") Value_type.int ]
       ~supers:[ (ty "T", 1) ]
       (ty "U"))

(* Strings biased toward everything the tokenizer must escape or must
   not split on; floats biased toward the values %.12g loses. *)
let rt_string_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'Z'; '0'; ' '; '"'; '\\'; '='; '#'; '\n'; '\t' ])
      (int_bound 10))

let rt_float_gen =
  QCheck.Gen.(
    frequency
      [ ( 1,
          oneofl
            [ nan; infinity; neg_infinity; 0.1 +. 0.2; -0.0; 4.9e-324;
              1.7976931348623157e308; 1.0 /. 3.0
            ] );
        (3, float)
      ])

let rt_obj_gen =
  QCheck.Gen.(
    bool >>= fun is_u ->
    small_signed_int >>= fun ai ->
    rt_float_gen >>= fun af ->
    rt_string_gen >>= fun astr ->
    bool >>= fun ab ->
    int_bound 3000 >>= fun ad -> return (is_u, ai, af, astr, ab, ad))

let rt_spec_gen =
  QCheck.Gen.(
    list_size (1 -- 12) rt_obj_gen >>= fun objs ->
    let n = List.length objs in
    list_size (0 -- 12) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun refs -> return (objs, refs))

let rt_build (objs, refs) =
  let db = Database.create rt_schema in
  let oids =
    List.map
      (fun (is_u, ai, af, astr, ab, ad) ->
        Database.new_object db
          (ty (if is_u then "U" else "T"))
          ~init:
            [ (at "ai", Value.Int ai);
              (at "af", Value.Float af);
              (at "astr", Value.String astr);
              (at "ab", Value.Bool ab);
              (at "ad", Value.Date ad)
            ])
      objs
  in
  let arr = Array.of_list oids in
  (* second pass: wire up references, self-references and cycles included *)
  List.iter
    (fun (i, j) -> Database.set_attr db arr.(i) (at "aref") (Value.Ref arr.(j)))
    refs;
  db

let prop_dump_roundtrip_exhaustive =
  QCheck.Test.make ~name:"dump/load identity on adversarial databases"
    ~count:1000
    (QCheck.make ~print:(fun spec -> Dump.to_string (rt_build spec)) rt_spec_gen)
    (fun spec ->
      let db = rt_build spec in
      let text = Dump.to_string db in
      let db2 = Database.create rt_schema in
      let _ = Dump.load_into db2 text in
      String.equal text (Dump.to_string db2))

let prop_dump_roundtrip =
  QCheck.Test.make ~name:"dump/load round-trips synth databases" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 5000))
    (fun seed ->
      let schema =
        Tdp_synth.Synth.generate { Tdp_synth.Synth.default with seed }
      in
      let db = Database.create schema in
      let _ = Tdp_synth.Synth.populate ~seed db 20 in
      let text = Dump.to_string db in
      let db2 = Database.create schema in
      let _ = Dump.load_into db2 text in
      String.equal text (Dump.to_string db2))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "forward references" `Quick test_forward_references;
    Alcotest.test_case "fresh oids after load" `Quick test_fresh_oids_after_load;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "value syntax" `Quick test_value_syntax;
    Alcotest.test_case "float round-trip exact" `Quick test_float_roundtrip_exact;
    Alcotest.test_case "non-finite floats" `Quick test_nonfinite_floats;
    Alcotest.test_case "non-positive oids rejected" `Quick
      test_nonpositive_oids_rejected;
    QCheck_alcotest.to_alcotest prop_dump_roundtrip;
    QCheck_alcotest.to_alcotest prop_dump_roundtrip_exhaustive
  ]

let () = Alcotest.run "dump" [ ("dump", suite) ]
