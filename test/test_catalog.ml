open Tdp_core
module Catalog = Tdp_algebra.Catalog
module View = Tdp_algebra.View
module Pred = Tdp_algebra.Pred
module Interp = Tdp_store.Interp
module Database = Tdp_store.Database
module Value = Tdp_store.Value
open Helpers

let emp_view =
  View.Project
    (View.Base (ty "Employee"), List.map at [ "ssn"; "date_of_birth"; "pay_rate" ])

let seniors_view =
  View.Select (emp_view, Pred.cmp (at "date_of_birth") Pred.Le (Body.Int 1975))

let test_define_and_drop_single () =
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let c, entry = Catalog.define_exn c ~name:"EmpView" emp_view in
  Alcotest.(check string) "view type named after view" "EmpView"
    (Type_name.to_string entry.view_type);
  Alcotest.(check int) "one entry" 1 (List.length (Catalog.entries c));
  let c = Catalog.drop_exn c ~name:"EmpView" in
  Alcotest.(check int) "no entries" 0 (List.length (Catalog.entries c));
  (* dropping restored the original two types *)
  Alcotest.(check int) "two types again" 2
    (Hierarchy.cardinal (Schema.hierarchy (Catalog.schema c)))

let test_nested_expression_single_entry () =
  (* A select-over-project is one entry with two steps; dropping it
     unwinds both. *)
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let c, entry = Catalog.define_exn c ~name:"Seniors" seniors_view in
  Alcotest.(check int) "two steps" 2 (List.length entry.steps);
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check bool) "selection type present" true (Hierarchy.mem h (ty "Seniors"));
  let c = Catalog.drop_exn c ~name:"Seniors" in
  Alcotest.(check int) "two types again" 2
    (Hierarchy.cardinal (Schema.hierarchy (Catalog.schema c)))

let test_drop_order_enforced () =
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let c, _ = Catalog.define_exn c ~name:"EmpView" emp_view in
  let c, _ =
    Catalog.define_exn c ~name:"Tiny"
      (View.Project (View.Base (ty "EmpView"), [ at "ssn" ]))
  in
  (match Catalog.drop c ~name:"EmpView" with
  | Error (Invariant_violation _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Error.pp e
  | Ok _ -> Alcotest.fail "dropping a depended-upon view must fail");
  (* reverse order works *)
  let c = Catalog.drop_exn c ~name:"Tiny" in
  let c = Catalog.drop_exn c ~name:"EmpView" in
  Alcotest.(check int) "everything unwound" 2
    (Hierarchy.cardinal (Schema.hierarchy (Catalog.schema c)))

let test_duplicate_name () =
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let c, _ = Catalog.define_exn c ~name:"EmpView" emp_view in
  match Catalog.define c ~name:"EmpView" emp_view with
  | Error (Invariant_violation _) -> ()
  | _ -> Alcotest.fail "expected duplicate-view error"

let test_drop_generalization () =
  (* generalize two projections, then unwind. *)
  let src =
    let open Tdp_paper.Build in
    let s = Schema.empty in
    let s = add_type s ~attrs:[ ("pid", Value_type.int) ] ~supers:[] "P" in
    let s = add_type s ~attrs:[ ("g", Value_type.int) ] ~supers:[ ("P", 1) ] "S" in
    let s = add_type s ~attrs:[ ("w", Value_type.int) ] ~supers:[ ("P", 1) ] "I" in
    add_reader s ~gf:"get_pid" ~on:"P" ~attr:"pid" ~result:Value_type.int
  in
  let before_types = Hierarchy.cardinal (Schema.hierarchy src) in
  let c = Catalog.create src in
  let c, entry =
    Catalog.define_exn c ~name:"U"
      (View.Generalize (View.Base (ty "S"), View.Base (ty "I")))
  in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check bool) "U present" true (Hierarchy.mem h (ty "U"));
  Alcotest.(check bool) "S ⪯ U" true (Hierarchy.subtype h (ty "S") (ty "U"));
  ignore entry;
  let c = Catalog.drop_exn c ~name:"U" in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check int) "type count restored" before_types (Hierarchy.cardinal h);
  Alcotest.(check bool) "S supers restored" true
    (Type_def.supers (Hierarchy.find h (ty "S")) = [ (ty "P", 1) ]);
  Alcotest.(check bool) "I supers restored" true
    (Type_def.supers (Hierarchy.find h (ty "I")) = [ (ty "P", 1) ]);
  Alcotest.(check (list string)) "get_pid restored" [ "P" ]
    (method_param_types (Catalog.schema c) "get_pid" "get_pid")

let test_drop_join () =
  (* join two unrelated types, then unwind. *)
  let src =
    let open Tdp_paper.Build in
    let s = Schema.empty in
    let s = add_type s ~attrs:[ ("g", Value_type.int) ] ~supers:[] "S" in
    add_type s ~attrs:[ ("w", Value_type.int) ] ~supers:[] "I"
  in
  let before_types = Hierarchy.cardinal (Schema.hierarchy src) in
  let c = Catalog.create src in
  (* typecheck agrees before any derivation happens *)
  let joined = View.Join (View.Base (ty "S"), View.Base (ty "I")) in
  (match Catalog.typecheck c ~name:"J" joined with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "join should typecheck: %a" Tdp_infer.Infer.pp_error e);
  let c, _entry = Catalog.define_exn c ~name:"J" joined in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check bool) "J present" true (Hierarchy.mem h (ty "J"));
  Alcotest.(check bool) "J ⪯ S" true (Hierarchy.subtype h (ty "J") (ty "S"));
  Alcotest.(check bool) "J ⪯ I" true (Hierarchy.subtype h (ty "J") (ty "I"));
  (* a second join over the view and an operand is rejected up front:
     the operands are already related *)
  (match Catalog.typecheck c ~name:"JJ" (View.Join (View.Base (ty "J"), View.Base (ty "S"))) with
  | Error (Tdp_infer.Infer.Join_related _) -> ()
  | _ -> Alcotest.fail "join over a related pair must not typecheck");
  let c = Catalog.drop_exn c ~name:"J" in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check int) "type count restored" before_types (Hierarchy.cardinal h);
  Alcotest.(check bool) "S restored as root" true
    (Type_def.supers (Hierarchy.find h (ty "S")) = [])

let test_optimize_protects_views () =
  let c = Catalog.create Tdp_paper.Fig3.schema in
  let c, _ =
    Catalog.define_exn c ~name:"V1"
      (View.Project (View.Base (ty "A"), List.map at [ "a2"; "e2"; "h2" ]))
  in
  let c, _ =
    Catalog.define_exn c ~name:"V2"
      (View.Project (View.Base (ty "V1"), List.map at [ "a2"; "e2" ]))
  in
  let c, _removed = Catalog.optimize_exn c in
  let h = Schema.hierarchy (Catalog.schema c) in
  Alcotest.(check bool) "V1 survives" true (Hierarchy.mem h (ty "V1"));
  Alcotest.(check bool) "V2 survives" true (Hierarchy.mem h (ty "V2"));
  (* the contract: views remain droppable after optimization *)
  let c = Catalog.drop_exn c ~name:"V2" in
  let c = Catalog.drop_exn c ~name:"V1" in
  Alcotest.(check int) "fully unwound" 8
    (Hierarchy.cardinal (Schema.hierarchy (Catalog.schema c)));
  (* the standalone optimizer, protecting only the visible view types,
     is allowed to collapse more aggressively *)
  let c2 = Catalog.create Tdp_paper.Fig3.schema in
  let c2, _ =
    Catalog.define_exn c2 ~name:"V1"
      (View.Project (View.Base (ty "A"), List.map at [ "a2"; "e2"; "h2" ]))
  in
  let _, removed =
    Tdp_algebra.Optimize.collapse_exn
      ~protect:(Type_name.Set.singleton (ty "V1"))
      (Catalog.schema c2)
  in
  Alcotest.(check bool) "aggressive collapse removes surrogates" true
    (removed <> [])

let test_catalog_with_store () =
  (* Define a view, query it, drop it, and confirm objects are
     untouched throughout. *)
  let c = Catalog.create Tdp_paper.Fig1.schema in
  let db = Database.create (Catalog.schema c) in
  let alice =
    Database.new_object db (ty "Employee")
      ~init:
        [ (at "ssn", Value.Int 1);
          (at "date_of_birth", Value.Date 1970);
          (at "pay_rate", Value.Float 10.0);
          (at "hrs_worked", Value.Float 5.0)
        ]
  in
  let c, entry = Catalog.define_exn c ~name:"Seniors" seniors_view in
  Database.set_schema db (Catalog.schema c);
  Alcotest.(check (list int)) "query finds alice"
    [ Tdp_store.Oid.to_int alice ]
    (List.map Tdp_store.Oid.to_int (View.instances db entry.expr));
  let c = Catalog.drop_exn c ~name:"Seniors" in
  Database.set_schema db (Catalog.schema c);
  let i = Interp.create ~now:2026 db in
  Alcotest.(check bool) "income still works" true
    (Value.equal (Interp.call_on i "income" [ alice ]) (Value.Float 50.0))

let suite =
  [ Alcotest.test_case "define and drop" `Quick test_define_and_drop_single;
    Alcotest.test_case "nested expression" `Quick test_nested_expression_single_entry;
    Alcotest.test_case "drop order enforced" `Quick test_drop_order_enforced;
    Alcotest.test_case "duplicate name" `Quick test_duplicate_name;
    Alcotest.test_case "drop generalization" `Quick test_drop_generalization;
    Alcotest.test_case "drop join" `Quick test_drop_join;
    Alcotest.test_case "optimize protects views" `Quick test_optimize_protects_views;
    Alcotest.test_case "catalog with store" `Quick test_catalog_with_store
  ]

let () = Alcotest.run "catalog" [ ("catalog", suite) ]
