open Tdp_core
open Helpers

(* Builders for small focused schemas. *)

let attr n = Attribute.make (at n) Value_type.int

let add_general schema ~gf ~id params body =
  Schema.add_method schema
    (Method_def.make ~gf ~id
       ~signature:(Signature.make (List.map (fun (x, t) -> (x, ty t)) params))
       (General body))

let add_reader schema ~gf ~on ~a =
  Schema.add_method schema
    (Method_def.reader ~gf ~id:gf ~param:"self" ~param_type:(ty on) ~attr:(at a)
       ~result:Value_type.int)

(* A ⪯ B; A has x and y, B has z. *)
let ab_schema () =
  let h = Hierarchy.empty in
  let h = Hierarchy.add h (Type_def.make ~attrs:[ attr "z" ] (ty "B")) in
  let h =
    Hierarchy.add h
      (Type_def.make ~attrs:[ attr "x"; attr "y" ] ~supers:[ (ty "B", 1) ] (ty "A"))
  in
  let s = Schema.with_hierarchy Schema.empty h in
  let s = add_reader s ~gf:"get_x" ~on:"A" ~a:"x" in
  let s = add_reader s ~gf:"get_y" ~on:"A" ~a:"y" in
  let s = add_reader s ~gf:"get_z" ~on:"B" ~a:"z" in
  s

let analyze schema source projection =
  Applicability.analyze_exn schema ~source:(ty source)
    ~projection:(List.map at projection)

let test_accessor_in_list () =
  let r = analyze (ab_schema ()) "A" [ "x" ] in
  Alcotest.(check bool) "get_x applicable" true
    (Applicability.status r (key "get_x" "get_x") = `Applicable);
  Alcotest.(check bool) "get_y not" true
    (Applicability.status r (key "get_y" "get_y") = `Not_applicable);
  Alcotest.(check bool) "get_z not" true
    (Applicability.status r (key "get_z" "get_z") = `Not_applicable)

let test_unknown_is_reported_for_untested () =
  let r = analyze (ab_schema ()) "A" [ "x" ] in
  Alcotest.(check bool) "never-seen method is unknown" true
    (Applicability.status r (key "nope" "nope") = `Unknown)

(* The paper's Section 4, case 1: mk(B) with body {n(B)}.  The only
   method of n is n1(A), which is NOT applicable to the call n(B) —
   but IS applicable to the substituted call n(A).  mk must therefore
   be applicable. *)
let test_case1_substitution () =
  let s = ab_schema () in
  let s =
    add_general s ~gf:"n" ~id:"n1" [ ("a", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"mk" ~id:"mk1" [ ("b", "B") ]
      [ Body.expr (Body.call "n" [ Body.var "b" ]) ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "mk1 applicable via substitution" true
    (Applicability.status r (key "mk" "mk1") = `Applicable);
  (* … and the chain collapses if the accessor misses the list. *)
  let r2 = analyze s "A" [ "y" ] in
  Alcotest.(check bool) "mk1 not applicable when get_x misses" true
    (Applicability.status r2 (key "mk" "mk1") = `Not_applicable)

(* Section 4, case 2: with two relevant argument positions the
   candidate set must be taken from the unsubstituted call.  n1(A,B)
   is applicable to n(A,A)… but not to n(B,A) or n(A,B)… wait — we
   need the converse: a method applicable only when BOTH positions are
   substituted must not count. *)
let test_case2_no_single_substitution () =
  let s = ab_schema () in
  (* n1(A, A): applicable to the full substitution n(A,A) only. *)
  let s =
    add_general s ~gf:"n" ~id:"n1"
      [ ("p", "A"); ("q", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "p" ]) ]
  in
  (* mk(B, B) calls n(b1, b2): both positions relevant; candidates must
     be the methods applicable to n(B, B) — none — so mk is NOT
     applicable, even though n(A,A) would have an applicable method. *)
  let s =
    add_general s ~gf:"mk" ~id:"mk1"
      [ ("b1", "B"); ("b2", "B") ]
      [ Body.expr (Body.call "n" [ Body.var "b1"; Body.var "b2" ]) ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "mk1 not applicable (case 2)" true
    (Applicability.status r (key "mk" "mk1") = `Not_applicable);
  Alcotest.(check bool) "n1 itself applicable" true
    (Applicability.status r (key "n" "n1") = `Applicable)

let test_case2_covered_by_supertype_method () =
  let s = ab_schema () in
  (* n2(B, B) is applicable to the unsubstituted call and bottoms out
     on an attribute in the projection list. *)
  let s =
    add_general s ~gf:"n" ~id:"n2"
      [ ("p", "B"); ("q", "B") ]
      [ Body.expr (Body.call "get_z" [ Body.var "p" ]) ]
  in
  let s =
    add_general s ~gf:"mk" ~id:"mk1"
      [ ("b1", "B"); ("b2", "B") ]
      [ Body.expr (Body.call "n" [ Body.var "b1"; Body.var "b2" ]) ]
  in
  let r = analyze s "A" [ "x"; "z" ] in
  Alcotest.(check bool) "mk1 applicable via n2" true
    (Applicability.status r (key "mk" "mk1") = `Applicable)

(* Direct recursion: the optimistic (greatest-fixpoint) reading makes a
   self-recursive method applicable when nothing falsifies it. *)
let test_direct_recursion_applicable () =
  let s = ab_schema () in
  let s =
    add_general s ~gf:"r" ~id:"r1" [ ("a", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "a" ]);
        Body.expr (Body.call "r" [ Body.var "a" ])
      ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "self-recursive method applicable" true
    (Applicability.status r (key "r" "r1") = `Applicable)

let test_direct_recursion_failing_accessor () =
  let s = ab_schema () in
  let s =
    add_general s ~gf:"r" ~id:"r1" [ ("a", "A") ]
      [ Body.expr (Body.call "get_y" [ Body.var "a" ]);
        Body.expr (Body.call "r" [ Body.var "a" ])
      ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "failing accessor dooms the cycle" true
    (Applicability.status r (key "r" "r1") = `Not_applicable)

(* Mutual recursion through two generic functions, both viable. *)
let test_mutual_recursion_applicable () =
  let s = ab_schema () in
  let s =
    add_general s ~gf:"p" ~id:"p1" [ ("a", "A") ]
      [ Body.expr (Body.call "q" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"q" ~id:"q1" [ ("a", "A") ]
      [ Body.expr (Body.call "p" [ Body.var "a" ]) ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "p1 applicable" true
    (Applicability.status r (key "p" "p1") = `Applicable);
  Alcotest.(check bool) "q1 applicable" true
    (Applicability.status r (key "q" "q1") = `Applicable)

(* A call whose arguments carry no formal of the source type is not
   relevant: its (non-)applicability must not affect the verdict. *)
let test_irrelevant_call_ignored () =
  let s = ab_schema () in
  let s = Schema.map_hierarchy s (fun h -> Hierarchy.add h (Type_def.make (ty "Z"))) in
  (* other(a) returns a Z; gf "sink" has NO applicable method for Z.
     The inner call other(a) is relevant (its argument is the formal),
     so "other" needs an applicable method of its own; the outer call
     sink(…) receives a fresh call result and is NOT relevant. *)
  let s =
    Schema.add_method s
      (Method_def.make ~gf:"other" ~id:"other1"
         ~signature:
           (Signature.make ~result:(Value_type.named (ty "Z")) [ ("a", ty "A") ])
         (General [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]))
  in
  let s =
    add_general s ~gf:"sink" ~id:"sink1" [ ("a", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"mk" ~id:"mk1" [ ("a", "A") ]
      [ Body.expr (Body.call "sink" [ Body.call "other" [ Body.var "a" ] ]);
        Body.expr (Body.call "get_x" [ Body.var "a" ])
      ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "mk1 applicable despite unserved inner call" true
    (Applicability.status r (key "mk" "mk1") = `Applicable)

(* Writers participate like readers. *)
let test_writer_applicability () =
  let s = ab_schema () in
  let s =
    Schema.add_method s
      (Method_def.writer ~gf:"set_x" ~id:"set_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x"))
  in
  let s =
    add_general s ~gf:"mk" ~id:"mk1" [ ("a", "A") ]
      [ Body.expr (Body.call "set_x" [ Body.var "a"; Body.int 1 ]) ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "set_x applicable" true
    (Applicability.status r (key "set_x" "set_x") = `Applicable);
  Alcotest.(check bool) "caller applicable" true
    (Applicability.status r (key "mk" "mk1") = `Applicable);
  let r2 = analyze s "A" [ "y" ] in
  Alcotest.(check bool) "set_x not applicable without x" true
    (Applicability.status r2 (key "set_x" "set_x") = `Not_applicable)

let test_empty_projection_error () =
  match analyze (ab_schema ()) "A" [] with
  | exception Error.E Empty_projection -> ()
  | _ -> Alcotest.fail "expected Empty_projection"

let test_unavailable_attr_error () =
  match analyze (ab_schema ()) "B" [ "x" ] with
  | exception Error.E (Attribute_not_available { attr; _ }) ->
      Alcotest.(check string) "attr" "x" (Attr_name.to_string attr)
  | _ -> Alcotest.fail "expected Attribute_not_available"

let test_candidates_are_type_applicable () =
  let r = analyze (ab_schema ()) "A" [ "x" ] in
  Alcotest.check key_set "candidates"
    (keys [ ("get_x", "get_x"); ("get_y", "get_y"); ("get_z", "get_z") ])
    r.candidates

let test_every_candidate_classified () =
  let o = Tdp_paper.Fig3.project () in
  let r = o.analysis in
  Method_def.Key.Set.iter
    (fun k ->
      match Applicability.status r k with
      | `Applicable | `Not_applicable -> ()
      | `Unknown -> Alcotest.failf "candidate %a left unknown" Method_def.Key.pp k)
    r.candidates

(* The optimistic-assumption machinery (MethodStack split + retraction)
   must run without tripping its frame invariant and converge to the
   same fixpoint as the cycle-free reading.  Fig3's y1 is the paper's
   own retraction example: the driver needs >1 pass and the trace shows
   both the assumption and its retraction. *)
let test_cycle_assumption_and_retraction () =
  let o = Tdp_paper.Fig3.project () in
  let r = o.analysis in
  Alcotest.(check bool) "driver re-ran after a retraction" true (r.passes > 1);
  let has p = List.exists p r.trace in
  Alcotest.(check bool) "an optimistic assumption was made" true
    (has (function Applicability.Assumed _ -> true | _ -> false));
  Alcotest.(check bool) "a method was retracted" true
    (has (function Applicability.Retracted _ -> true | _ -> false));
  (* and a failing mutual cycle: the stack-split path with a failing
     accessor downstream of the assumption *)
  let s = ab_schema () in
  let s =
    add_general s ~gf:"p" ~id:"p1" [ ("a", "A") ]
      [ Body.expr (Body.call "q" [ Body.var "a" ]) ]
  in
  let s =
    add_general s ~gf:"q" ~id:"q1" [ ("a", "A") ]
      [ Body.expr (Body.call "p" [ Body.var "a" ]);
        Body.expr (Body.call "get_y" [ Body.var "a" ])
      ]
  in
  let r = analyze s "A" [ "x" ] in
  Alcotest.(check bool) "p1 falls with the cycle" true
    (Applicability.status r (key "p" "p1") = `Not_applicable);
  Alcotest.(check bool) "q1 falls on its accessor" true
    (Applicability.status r (key "q" "q1") = `Not_applicable)

let same_result (a : Applicability.result) (b : Applicability.result) =
  Method_def.Key.Set.equal a.applicable b.applicable
  && Method_def.Key.Set.equal a.not_applicable b.not_applicable
  && Method_def.Key.Set.equal a.candidates b.candidates
  && a.passes = b.passes

let test_analyze_all_equivalent () =
  let s = ab_schema () in
  let s =
    add_general s ~gf:"n" ~id:"n1" [ ("a", "A") ]
      [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]
  in
  let views =
    [ (ty "A", [ at "x" ]);
      (ty "A", [ at "y" ]);
      (ty "A", [ at "x"; at "y"; at "z" ]);
      (ty "B", [ at "z" ])
    ]
  in
  let batched = Applicability.analyze_all_exn s ~views in
  let single =
    List.map (fun (source, projection) -> Applicability.analyze_exn s ~source ~projection) views
  in
  List.iteri
    (fun i (b, u) ->
      Alcotest.(check bool) (Fmt.str "view %d agrees" i) true (same_result b u))
    (List.combine batched single);
  (* guarded variant isolates per-view failures *)
  match
    Applicability.analyze_all s
      ~views:[ (ty "A", [ at "x" ]); (ty "A", []); (ty "B", [ at "x" ]) ]
  with
  | [ Ok _; Error Empty_projection; Error (Attribute_not_available _) ] -> ()
  | _ -> Alcotest.fail "analyze_all must report per-view errors in place"

let test_batch_reuse () =
  let s = ab_schema () in
  let b = Applicability.batch s in
  let r1 = Applicability.analyze_batch_exn b ~source:(ty "A") ~projection:[ at "x" ] in
  let r2 = Applicability.analyze_batch_exn b ~source:(ty "A") ~projection:[ at "x" ] in
  Alcotest.(check bool) "same schema behind the batch" true
    (Applicability.batch_schema b == s);
  Alcotest.(check bool) "re-analysis over a warm batch agrees" true
    (same_result r1 r2)

let test_explanations () =
  let schema = Tdp_paper.Fig3.schema in
  let source = ty "A" and projection = Tdp_paper.Fig3.projection in
  let r = Applicability.analyze_exn schema ~source ~projection in
  let explain k = Applicability.explain schema r ~source ~projection k in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "accessor reason" true
    (contains (explain (key "get_a1" "get_a1")) "NOT in the projection list");
  Alcotest.(check bool) "u1 blames get_a1" true
    (contains (explain (key "u" "u1")) "call to get_a1");
  Alcotest.(check bool) "v2 blames get_b1" true
    (contains (explain (key "v" "v2")) "call to get_b1");
  (* At the fixpoint both of x1's calls lack applicable methods (y1 went
     down with x1); the explanation reports the first in body order. *)
  Alcotest.(check bool) "x1 blames its first dead call" true
    (contains (explain (key "x" "x1")) "call to y");
  (* y1's only call is x(A,B) whose candidate x1 is not applicable *)
  Alcotest.(check bool) "y1 blames x" true (contains (explain (key "y" "y1")) "call to x");
  Alcotest.(check bool) "applicable reason" true
    (contains (explain (key "v" "v1")) "every relevant");
  Alcotest.(check bool) "unknown method" true
    (contains (explain (key "zz" "zz")) "unknown")

let suite =
  [ Alcotest.test_case "accessor in/out of list" `Quick test_accessor_in_list;
    Alcotest.test_case "explanations" `Quick test_explanations;
    Alcotest.test_case "untested is unknown" `Quick test_unknown_is_reported_for_untested;
    Alcotest.test_case "case 1: source substitution" `Quick test_case1_substitution;
    Alcotest.test_case "case 2: no single substitution" `Quick
      test_case2_no_single_substitution;
    Alcotest.test_case "case 2: supertype method covers" `Quick
      test_case2_covered_by_supertype_method;
    Alcotest.test_case "direct recursion, applicable" `Quick
      test_direct_recursion_applicable;
    Alcotest.test_case "direct recursion, failing accessor" `Quick
      test_direct_recursion_failing_accessor;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_applicable;
    Alcotest.test_case "irrelevant call ignored" `Quick test_irrelevant_call_ignored;
    Alcotest.test_case "writer applicability" `Quick test_writer_applicability;
    Alcotest.test_case "empty projection" `Quick test_empty_projection_error;
    Alcotest.test_case "unavailable attribute" `Quick test_unavailable_attr_error;
    Alcotest.test_case "candidate seeding" `Quick test_candidates_are_type_applicable;
    Alcotest.test_case "no candidate left unknown" `Quick
      test_every_candidate_classified;
    Alcotest.test_case "cycle assumption and retraction" `Quick
      test_cycle_assumption_and_retraction;
    Alcotest.test_case "analyze_all ≡ per-view analyze" `Quick
      test_analyze_all_equivalent;
    Alcotest.test_case "batch reuse" `Quick test_batch_reuse
  ]

let () = Alcotest.run "applicability" [ ("isapplicable", suite) ]
