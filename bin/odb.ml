(* odb — command-line front end for the type-derivation library.

     odb [--metrics[=pretty|json]] [--trace FILE] COMMAND ...

     odb check schema.odb [--json]
     odb lint schema.odb [--json] [--code TDPxxx]
     odb infer schema.odb [--json]
     odb repl TARGET [--script FILE] [--json]
     odb apply schema.odb [--collapse] [--print | --dot] [--json]
     odb methods schema.odb --source T --attrs a,b,c [--trace] [--json]
     odb dispatch schema.odb --gf f --args T1,T2 [--all] [--json]
     odb query schema.odb data.odd --view V [--json]
     odb store ACTION dir [--schema FILE] [--script FILE] [--json]
     odb serve dir [--socket PATH | --tcp HOST:PORT] [--domains N] [--no-sync]
     odb connect dir|socket [--tcp HOST:PORT] [--json]
     odb dot schema.odb [--json]
     odb stats [FILE]

   Schema files use the surface syntax of Tdp_lang (see README.md).

   Conventions (docs/cli.md):
   - exit 0 = success, 1 = the command ran and found something to
     report (lint errors, corruption, an unresolvable call), 2 = usage
     or operational error;
   - every subcommand accepts [--json] and then prints exactly one
     envelope line {"command","status","exit","data"} on stdout;
   - the global observability flags come before the subcommand:
     [--metrics] enables the Tdp_obs registry (pretty table on stderr
     at exit; [--metrics=json] prints the metrics envelope on stdout
     instead), [--trace FILE] streams spans to FILE as JSON lines. *)

open Tdp_core
module Elaborate = Tdp_lang.Elaborate
module Printer = Tdp_lang.Printer
module Session = Tdp_lang.Session
module Repl = Tdp_lang.Repl
module Optimize = Tdp_algebra.Optimize
module Static_check = Tdp_dispatch.Static_check
module Dispatch = Tdp_dispatch.Dispatch
module Diagnostic = Tdp_analysis.Diagnostic
module Lint = Tdp_analysis.Lint
module Infer = Tdp_infer.Infer
module Obs = Tdp_obs
module J = Tdp_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- envelope and exit-code convention ------------------------------ *)

(* Set by each subcommand on entry so that [die] can honor --json. *)
let json_mode = ref false
let command_name = ref "odb"

let setup name json =
  command_name := name;
  json_mode := json

let exit_of = function `Ok -> 0 | `Findings -> 1 | `Error -> 2

let status_name = function
  | `Ok -> "ok"
  | `Findings -> "findings"
  | `Error -> "error"

let envelope status data =
  J.Obj
    [ ("command", J.String !command_name);
      ("status", J.String (status_name status));
      ("exit", J.Int (exit_of status));
      ("data", data)
    ]

(* Every subcommand returns through here: in --json mode the envelope
   is the command's entire stdout. *)
let finish ?(data = J.Obj []) status =
  if !json_mode then print_endline (J.to_string (envelope status data));
  exit_of status

let error_message ?file e =
  match (file, Error.position e) with
  | Some f, Some (l, c) -> Fmt.str "%s:%d:%d: %s" f l c (Error.message e)
  | Some f, None -> Fmt.str "%s: %s" f (Error.message e)
  | None, _ -> Fmt.str "%a" Error.pp e

let die_msg msg =
  if !json_mode then
    print_endline
      (J.to_string (envelope `Error (J.Obj [ ("error", J.String msg) ])))
  else Fmt.epr "error: %s@." msg;
  exit 2

let die ?file e = die_msg (error_message ?file e)
let or_die ?file = function Ok v -> v | Error e -> die ?file e
let load path = or_die ~file:path (Elaborate.load (read_file path))

let summary schema =
  let h = Schema.hierarchy schema in
  let surrogates =
    Hierarchy.fold (fun d n -> if Type_def.is_surrogate d then n + 1 else n) h 0
  in
  Fmt.pr "types: %d (%d surrogates)  generic functions: %d  methods: %d@."
    (Hierarchy.cardinal h) surrogates
    (List.length (Schema.gfs schema))
    (List.length (Schema.all_methods schema))

let summary_fields schema =
  let h = Schema.hierarchy schema in
  let surrogates =
    Hierarchy.fold (fun d n -> if Type_def.is_surrogate d then n + 1 else n) h 0
  in
  [ ("types", J.Int (Hierarchy.cardinal h));
    ("surrogates", J.Int surrogates);
    ("generic_functions", J.Int (List.length (Schema.gfs schema)));
    ("methods", J.Int (List.length (Schema.all_methods schema)))
  ]

let key_str k = Fmt.str "%a" Method_def.Key.pp k
let key_list s = J.List (List.map (fun k -> J.String (key_str k)) (Method_def.Key.Set.elements s))

(* --- check --------------------------------------------------------- *)

(* Checking, inference and dispatch resolution all evaluate through
   {!Session} one-shot helpers: the outcome structure, its text form
   and its JSON payload live in lib/lang, shared verbatim with the repl
   and the server's [eval] verb.  This command only maps outcomes to
   the envelope/exit conventions. *)

let check_cmd file json =
  setup "check" json;
  let o = Session.check_source ~file (read_file file) in
  let status = if Session.failed o then `Findings else `Ok in
  if json then finish status ~data:(Session.to_json o)
  else begin
    (match status with
    | `Ok -> Fmt.pr "%s@." (Session.render o)
    | _ -> Fmt.epr "%s@." (Session.render o));
    exit_of status
  end

(* --- lint ---------------------------------------------------------- *)

let lint_cmd file json code =
  setup "lint" json;
  (match code with
  | Some c when not (List.exists (fun (c', _, _) -> c' = c) Lint.codes) ->
      die_msg (Fmt.str "unknown diagnostic code %s (see docs/diagnostics.md)" c)
  | _ -> ());
  let diags =
    match Elaborate.load_unchecked (read_file file) with
    | Error e -> [ Lint.of_error ~file e ]
    | Ok r ->
        Lint.lint_program ~file ~positions:r.view_positions r.schema
          ~views:r.views
  in
  let diags =
    match code with
    | None -> diags
    | Some c -> List.filter (fun (d : Diagnostic.t) -> d.code = c) diags
  in
  let errors, warnings, infos = Diagnostic.count diags in
  let status = if List.exists Diagnostic.is_error diags then `Findings else `Ok in
  if json then
    let diag_json d =
      (* Diagnostic.to_json emits one object per diagnostic; embed it
         structurally rather than as an opaque string *)
      match J.parse (Diagnostic.to_json d) with
      | Ok j -> j
      | Error _ -> J.String (Diagnostic.to_json d)
    in
    finish status
      ~data:
        (J.Obj
           [ ("file", J.String file);
             ("diagnostics", J.List (List.map diag_json diags));
             ("errors", J.Int errors);
             ("warnings", J.Int warnings);
             ("infos", J.Int infos)
           ])
  else begin
    List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) diags;
    if diags = [] then Fmt.pr "no issues found.@."
    else Fmt.pr "%d error(s), %d warning(s), %d info@." errors warnings infos;
    exit_of status
  end

(* --- infer --------------------------------------------------------- *)

let infer_cmd file json =
  setup "infer" json;
  match Session.infer_source ~file (read_file file) with
  (* an unparseable schema is a usage error here, as everywhere the
     schema is an input rather than the thing under test *)
  | Session.Diag _ as o -> die_msg (Session.render o)
  | o ->
      let status = if Session.failed o then `Findings else `Ok in
      if json then finish status ~data:(Session.to_json o)
      else begin
        Fmt.pr "%s@." (Session.render o);
        exit_of status
      end

(* --- apply --------------------------------------------------------- *)

let apply_cmd file collapse print_schema dot show_diff json =
  setup "apply" json;
  let r = load file in
  let schema, derived = or_die (Elaborate.apply_views r) in
  let diff_str =
    if show_diff then
      Some (Fmt.str "@[<v>%a@]" Diff.pp (Diff.schema_changes r.schema schema))
    else None
  in
  let schema, collapsed =
    if collapse then begin
      let protect = Type_name.Set.of_list (List.map snd derived) in
      let collapsed, removed = or_die (Optimize.collapse ~protect schema) in
      (collapsed, Some (List.length removed))
    end
    else (schema, None)
  in
  let view_attrs ty_ =
    Hierarchy.all_attribute_names (Schema.hierarchy schema) ty_
  in
  if json then
    finish `Ok
      ~data:
        (J.Obj
           (("file", J.String file)
           :: ("views",
               J.List
                 (List.map
                    (fun (name, ty_) ->
                      J.Obj
                        [ ("name", J.String name);
                          ("type", J.String (Type_name.to_string ty_));
                          ("attrs",
                           J.List
                             (List.map
                                (fun a -> J.String (Attr_name.to_string a))
                                (view_attrs ty_)))
                        ])
                    derived))
           :: summary_fields schema
           @ (match collapsed with
             | Some n -> [ ("collapsed", J.Int n) ]
             | None -> [])
           @ (match diff_str with
             | Some d -> [ ("diff", J.String d) ]
             | None -> [])
           @ (if print_schema then [ ("schema", J.String (Printer.print schema)) ] else [])
           @
           if dot then
             [ ("dot", J.String (Dot.of_hierarchy ~name:file (Schema.hierarchy schema))) ]
           else []))
  else begin
    (match diff_str with Some d -> Fmt.pr "%s@." d | None -> ());
    List.iter
      (fun (name, ty_) ->
        Fmt.pr "view %-16s -> %s {%s}@." name (Type_name.to_string ty_)
          (String.concat ", " (List.map Attr_name.to_string (view_attrs ty_))))
      derived;
    (match collapsed with
    | Some n -> Fmt.pr "collapsed %d empty surrogates@." n
    | None -> ());
    summary schema;
    if print_schema then Fmt.pr "@.%s" (Printer.print schema);
    if dot then Fmt.pr "@.%s" (Dot.of_hierarchy ~name:file (Schema.hierarchy schema));
    0
  end

(* --- methods ------------------------------------------------------- *)

let methods_cmd file source attrs trace explain json =
  setup "methods" json;
  let r = load file in
  let projection = List.map Attr_name.of_string attrs in
  let source = Type_name.of_string source in
  let analysis = or_die (Applicability.analyze r.schema ~source ~projection) in
  if json then
    finish `Ok
      ~data:
        (J.Obj
           ([ ("file", J.String file);
              ("source", J.String (Type_name.to_string source));
              ("projection", J.List (List.map (fun a -> J.String (Attr_name.to_string a)) projection));
              ("applicable", key_list analysis.applicable);
              ("not_applicable", key_list analysis.not_applicable);
              ("candidates", key_list analysis.candidates);
              ("passes", J.Int analysis.passes)
            ]
           @ (if trace then
                [ ("trace",
                   J.List
                     (List.map
                        (fun e -> J.String (Fmt.str "%a" Applicability.pp_event e))
                        analysis.trace))
                ]
              else [])
           @
           if explain then
             [ ("explanations",
                J.Obj
                  (List.map
                     (fun k ->
                       ( key_str k,
                         J.String
                           (Applicability.explain r.schema analysis ~source
                              ~projection k) ))
                     (Method_def.Key.Set.elements analysis.candidates)))
             ]
           else []))
  else begin
    if trace then
      List.iter (fun e -> Fmt.pr "  %a@." Applicability.pp_event e) analysis.trace;
    Fmt.pr "%a@." Applicability.pp_result analysis;
    if explain then
      Method_def.Key.Set.iter
        (fun k ->
          Fmt.pr "  %s@." (Applicability.explain r.schema analysis ~source ~projection k))
        analysis.candidates;
    0
  end

(* --- dispatch ------------------------------------------------------ *)

let dispatch_cmd file apply_views gf args all json =
  setup "dispatch" json;
  let r = load file in
  let schema =
    if apply_views then fst (or_die (Elaborate.apply_views r)) else r.schema
  in
  let arg_types = List.map Type_name.of_string args in
  match Session.resolve_call ~file schema ~gf ~arg_types ~chain:all with
  (* an unknown argument type is a usage error (TDP051), like check's
     and infer's unparseable schema *)
  | Session.Diag _ as o -> die_msg (Session.render o)
  | o ->
      let status = if Session.failed o then `Findings else `Ok in
      if json then finish status ~data:(Session.to_json o)
      else begin
        (match status with
        | `Ok -> Fmt.pr "%s@." (Session.render o)
        | _ -> Fmt.epr "%s@." (Session.render o));
        exit_of status
      end

(* --- query --------------------------------------------------------- *)

let query_cmd schema_file data_file view_name materialize json =
  setup "query" json;
  let r = load schema_file in
  let schema, _derived = or_die (Elaborate.apply_views r) in
  let expr =
    match List.assoc_opt view_name r.views with
    | Some e -> e
    | None -> die_msg (Fmt.str "no view named %S in %s" view_name schema_file)
  in
  let db = Tdp_store.Database.create schema in
  (try ignore (Tdp_store.Dump.load_into db (read_file data_file)) with
  | Tdp_store.Dump.Parse_error { line; message } ->
      die_msg (Fmt.str "%s:%d: %s" data_file line message)
  | Tdp_store.Database.Store_error m -> die_msg m);
  let h = Schema.hierarchy schema in
  let view_type = Type_name.of_string view_name in
  let attrs = Hierarchy.all_attribute_names h view_type in
  let oids =
    if materialize then Tdp_algebra.View.materialize db ~view_type expr
    else Tdp_algebra.View.instances db expr
  in
  if json then
    finish `Ok
      ~data:
        (J.Obj
           [ ("view", J.String view_name);
             ("count", J.Int (List.length oids));
             ("instances",
              J.List
                (List.map
                   (fun oid ->
                     J.Obj
                       [ ("oid", J.String (Fmt.str "%a" Tdp_store.Oid.pp oid));
                         ("type",
                          J.String
                            (Type_name.to_string (Tdp_store.Database.type_of db oid)));
                         ("attrs",
                          J.Obj
                            (List.map
                               (fun a ->
                                 ( Attr_name.to_string a,
                                   J.String
                                     (Tdp_store.Dump.value_to_string
                                        (Tdp_store.Database.get_attr db oid a)) ))
                               attrs))
                       ])
                   oids))
           ])
  else begin
    List.iter
      (fun oid ->
        Fmt.pr "%s %s" (Fmt.str "%a" Tdp_store.Oid.pp oid)
          (Type_name.to_string (Tdp_store.Database.type_of db oid));
        List.iter
          (fun a ->
            Fmt.pr " %s=%s" (Attr_name.to_string a)
              (Tdp_store.Dump.value_to_string (Tdp_store.Database.get_attr db oid a)))
          attrs;
        Fmt.pr "@.")
      oids;
    Fmt.pr "%d instance(s) of view %s@." (List.length oids) view_name;
    0
  end

(* --- store --------------------------------------------------------- *)

(* A durable store directory:

     DIR/schema.odb     surface-syntax schema (copied at init)
     DIR/snapshot.dump  latest atomic snapshot (Dump.save)
     DIR/wal.log        write-ahead log of mutations since the snapshot

   Mutation scripts reuse the WAL payload grammar, one op per line:

     new #1 Employee ssn=1 name="alice"
     set #1 pay_rate=60.0
     del #1 nullify
     schema "type ..."                       -- swap in an evolved schema *)

module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Wal = Tdp_store.Wal

type store_action = Init | Append | Recover | Checkpoint | Verify | DumpDb | Stats

let store_schema_loader src = (Elaborate.load_exn src).Elaborate.schema

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let pp_corruption ppf (c : Wal.corruption) =
  Fmt.pf ppf "wal corrupt at byte %d (expected seq %d): %s" c.offset c.at_seq
    c.reason

let corruption_json = function
  | None -> J.Null
  | Some (c : Wal.corruption) ->
      J.Obj
        [ ("at_seq", J.Int c.at_seq);
          ("offset", J.Int c.offset);
          ("reason", J.String c.reason)
        ]

let parse_script file =
  read_file file
  |> String.split_on_char '\n'
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter_map (fun (i, l) ->
         if l = "" || (String.length l >= 2 && String.sub l 0 2 = "--") then None
         else Some (Wal.payload_of_string ~line:i l))

let store_cmd action dir schema_file script_file json =
  setup "store" json;
  let schema_path = Filename.concat dir "schema.odb"
  and snapshot_path = Filename.concat dir "snapshot.dump"
  and wal_path = Filename.concat dir "wal.log" in
  (* A crash between Dump.save's temp-write and rename leaves an
     orphaned snapshot.dump.tmp; it is never read as a snapshot, only
     removed (and the removal announced). *)
  let clean_orphan () =
    if Sys.file_exists dir && Dump.clean_tmp ~path:snapshot_path then begin
      Fmt.epr "warning: removed orphaned %s.tmp (crashed checkpoint)@."
        snapshot_path;
      true
    end
    else false
  in
  let recover schema =
    Wal.recover ~load_schema:store_schema_loader ~schema ~snapshot_path
      ~wal_path ()
  in
  (* warnings go to stderr in both modes; the envelope carries the
     structured corruption record *)
  let warn_corruption = function
    | None -> ()
    | Some c -> Fmt.epr "warning: %a; recovered the prefix before it@." pp_corruption c
  in
  try
    match action with
    | Init ->
        let sf =
          match schema_file with
          | Some f -> f
          | None -> die_msg "odb store init requires --schema FILE"
        in
        let src = read_file sf in
        let r = or_die ~file:sf (Elaborate.load src) in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        ignore (clean_orphan ());
        write_file schema_path src;
        Dump.save ~path:snapshot_path (Database.create r.schema);
        Wal.close (Wal.writer_create ~path:wal_path ~next_seq:1 ());
        let types = Hierarchy.cardinal (Schema.hierarchy r.schema) in
        if json then
          finish `Ok
            ~data:(J.Obj [ ("dir", J.String dir); ("types", J.Int types) ])
        else begin
          Fmt.pr "initialized %s (%d types, empty extent)@." dir types;
          0
        end
    | Verify ->
        let wal = if Sys.file_exists wal_path then read_file wal_path else "" in
        let d = Wal.decode wal in
        let schema = (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema in
        let snap =
          if Sys.file_exists snapshot_path then read_file snapshot_path else ""
        in
        let db = Database.create schema in
        let snap_objs = List.length (Dump.load_into db snap) in
        let status = match d.corruption with None -> `Ok | Some _ -> `Findings in
        if json then
          finish status
            ~data:
              (J.Obj
                 [ ("snapshot_objects", J.Int snap_objs);
                   ("snapshot_wal_seq", J.Int (Dump.wal_seq snap));
                   ("wal_records", J.Int (List.length d.entries));
                   ("wal_valid_bytes", J.Int d.valid_bytes);
                   ("next_seq", J.Int d.next_seq);
                   ("corruption", corruption_json d.corruption)
                 ])
        else begin
          Fmt.pr "snapshot: %d object(s), wal-seq %d@." snap_objs (Dump.wal_seq snap);
          Fmt.pr "wal: %d intact record(s), %d byte(s) valid, next seq %d@."
            (List.length d.entries) d.valid_bytes d.next_seq;
          (match d.corruption with
          | None -> Fmt.pr "ok.@."
          | Some c -> Fmt.pr "%a@." pp_corruption c);
          exit_of status
        end
    | (Append | Recover | Checkpoint | DumpDb | Stats) as action -> (
        let tmp_removed = clean_orphan () in
        let schema =
          (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema
        in
        let r = recover schema in
        let recovery_fields (r : Wal.recovery) =
          [ ("objects", J.Int (Database.count r.db));
            ("snapshot_seq", J.Int r.snapshot_seq);
            ("replayed", J.Int r.replayed);
            ("last_seq", J.Int r.last_seq);
            ("tmp_removed", J.Bool tmp_removed);
            ("corruption", corruption_json r.corruption)
          ]
        in
        match action with
        | Recover ->
            warn_corruption r.corruption;
            if json then finish `Ok ~data:(J.Obj (recovery_fields r))
            else begin
              Fmt.pr
                "recovered %d object(s): snapshot seq %d + %d wal record(s), \
                 last seq %d@."
                (Database.count r.db) r.snapshot_seq r.replayed r.last_seq;
              0
            end
        | DumpDb ->
            warn_corruption r.corruption;
            if json then
              finish `Ok
                ~data:(J.Obj (recovery_fields r @ [ ("dump", J.String (Dump.to_string r.db)) ]))
            else begin
              print_string (Dump.to_string r.db);
              0
            end
        | Stats ->
            (* storage-layout statistics of the recovered store: one
               line per columnar block *)
            warn_corruption r.corruption;
            let stats = Database.stats r.db in
            if json then
              finish `Ok
                ~data:
                  (J.Obj
                     [ ("objects", J.Int (Database.count r.db));
                       ("blocks", J.Int (List.length stats));
                       ( "block_stats",
                         J.List
                           (List.map
                              (fun (s : Database.block_stat) ->
                                J.Obj
                                  [ ("type", J.String (Type_name.to_string s.st_ty));
                                    ("live", J.Int s.st_live);
                                    ("rows", J.Int s.st_rows);
                                    ("capacity", J.Int s.st_capacity);
                                    ("free", J.Int s.st_free);
                                    ("columns", J.Int s.st_columns)
                                  ])
                              stats) )
                     ])
            else begin
              Fmt.pr "%d object(s) in %d block(s)@." (Database.count r.db)
                (List.length stats);
              List.iter
                (fun (s : Database.block_stat) ->
                  Fmt.pr "%s: %d live, %d rows, capacity %d, %d free, %d column(s)@."
                    (Type_name.to_string s.st_ty) s.st_live s.st_rows
                    s.st_capacity s.st_free s.st_columns)
                stats;
              0
            end
        | Checkpoint ->
            warn_corruption r.corruption;
            Dump.save ~wal_seq:r.last_seq ~path:snapshot_path r.db;
            Wal.close (Wal.writer_create ~path:wal_path ~next_seq:(r.last_seq + 1) ());
            if json then finish `Ok ~data:(J.Obj (recovery_fields r))
            else begin
              Fmt.pr "checkpointed %d object(s) at seq %d@." (Database.count r.db)
                r.last_seq;
              0
            end
        | Append ->
            let sf =
              match script_file with
              | Some f -> f
              | None -> die_msg "odb store append requires --script FILE"
            in
            let ops = parse_script sf in
            (match r.corruption with
            | Some c ->
                Fmt.epr "warning: %a; truncating the torn tail@." pp_corruption c;
                Wal.repair ~path:wal_path r.wal_valid_bytes
            | None -> ());
            let w = Wal.writer_open ~path:wal_path ~next_seq:(r.last_seq + 1) () in
            Fun.protect
              ~finally:(fun () ->
                Database.set_journal r.db None;
                Wal.close w)
              (fun () ->
                Wal.attach w r.db;
                List.iter (Wal.apply ~load_schema:store_schema_loader r.db) ops);
            if json then
              finish `Ok
                ~data:
                  (J.Obj
                     [ ("applied", J.Int (List.length ops));
                       ("objects", J.Int (Database.count r.db));
                       ("last_seq", J.Int (Wal.writer_seq w - 1))
                     ])
            else begin
              Fmt.pr "applied %d operation(s); %d object(s), wal at seq %d@."
                (List.length ops) (Database.count r.db) (Wal.writer_seq w - 1);
              0
            end
        | Init | Verify -> assert false)
  with
  | Database.Store_error m -> die_msg m
  | Dump.Parse_error { line; message } -> die_msg (Fmt.str "line %d: %s" line message)
  | Wal.Wal_error m -> die_msg m

(* --- repl ----------------------------------------------------------- *)

(* `odb repl TARGET` — the interactive statement language over either a
   schema file (a fresh in-memory store, the file's views predefined)
   or a store directory.  Directory recovery goes through
   [Mvcc.recover_text] so transactional commits in txn.log are visible
   too, not just wal.log state — the repl sees what `odb serve` would
   serve.  Mutations stay in memory — durable writes go through
   `odb connect` and the server's `eval` verb.  With --script the
   input is replayed with prompts and lines echoed, so the transcript
   is deterministic — the golden corpus under test/golden/repl/. *)

let repl_session target =
  if Sys.file_exists target && Sys.is_directory target then begin
    let schema_path = Filename.concat target "schema.odb" in
    if not (Sys.file_exists schema_path) then
      die_msg (Fmt.str "%s not found (run odb store init first)" schema_path);
    let schema =
      (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).Elaborate.schema
    in
    let contents name =
      let f = Filename.concat target name in
      if Sys.file_exists f then Some (read_file f) else None
    in
    let module M = Tdp_txn.Mvcc in
    let o =
      M.recover_text ~load_schema:store_schema_loader ~schema
        ?snapshot:(contents "snapshot.dump") ?wal:(contents "wal.log")
        ?txn:(contents "txn.log") ()
    in
    let db = M.to_database (M.head o.M.store ~branch:M.main_branch) in
    Session.of_database ~file:target db
  end
  else begin
    let r = or_die ~file:target (Elaborate.load (read_file target)) in
    let s = Session.of_database ~file:target (Database.create r.Elaborate.schema) in
    (try Session.install_views s r.Elaborate.views
     with Error.E e -> die ~file:target e);
    s
  end

let repl_cmd target script json =
  setup "repl" json;
  let session = try repl_session target with Database.Store_error m -> die_msg m in
  match script with
  | None ->
      if json then
        die_msg "--json requires --script FILE (an interactive repl has no envelope)";
      Repl.run ~interactive:true session stdin stdout;
      0
  | Some f ->
      if json then begin
        let outcomes = Session.eval_string session (read_file f) in
        let status =
          if List.exists Session.failed outcomes then `Findings else `Ok
        in
        finish status
          ~data:
            (J.Obj
               [ ("target", J.String target);
                 ("script", J.String f);
                 ("outcomes", J.List (List.map Session.to_json outcomes))
               ])
      end
      else begin
        let ic = open_in f in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Repl.run ~echo:true session ic stdout);
        0
      end

(* --- serve / connect ------------------------------------------------ *)

module Mvcc = Tdp_txn.Mvcc
module Server = Tdp_txn.Server

let default_socket dir = Filename.concat dir "odb.sock"

let parse_host_port spec =
  match String.rindex_opt spec ':' with
  | None -> die_msg (Fmt.str "expected HOST:PORT, got %s" spec)
  | Some i -> (
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | None -> die_msg (Fmt.str "bad port %s" port)
      | Some port -> (
          let host = if host = "" then "127.0.0.1" else host in
          match Unix.getaddrinfo host (string_of_int port)
                  [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
          with
          | { Unix.ai_addr; _ } :: _ -> ai_addr
          | [] -> die_msg (Fmt.str "cannot resolve %s" host)))

let sockaddr_string = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (addr, port) ->
      Fmt.str "%s:%d" (Unix.string_of_inet_addr addr) port

(* `odb serve DIR` — recover the transactional store in DIR and serve
   it until SIGINT/SIGTERM.  Commits are write-ahead logged to
   DIR/txn.log; crash recovery replays committed brackets only. *)
let serve_cmd dir socket tcp domains no_sync json =
  setup "serve" json;
  let schema_path = Filename.concat dir "schema.odb" in
  if not (Sys.file_exists schema_path) then
    die_msg (Fmt.str "%s not found (run odb store init first)" schema_path);
  let schema =
    (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema
  in
  let addr =
    match (socket, tcp) with
    | Some _, Some _ -> die_msg "--socket and --tcp are mutually exclusive"
    | None, Some spec -> parse_host_port spec
    | Some path, None -> Unix.ADDR_UNIX path
    | None, None -> Unix.ADDR_UNIX (default_socket dir)
  in
  try
    let o =
      Mvcc.open_dir ~load_schema:store_schema_loader ~sync:(not no_sync)
        ~schema dir
    in
    (match o.Mvcc.txn_corruption with
    | Some c -> Fmt.epr "warning: txn log %a; recovered the prefix before it@." pp_corruption c
    | None -> ());
    (match o.Mvcc.wal_corruption with
    | Some c -> Fmt.epr "warning: %a; recovered the prefix before it@." pp_corruption c
    | None -> ());
    if o.Mvcc.tmp_removed then
      Fmt.epr "warning: removed orphaned snapshot .tmp (crashed checkpoint)@.";
    let store = o.Mvcc.store in
    let srv =
      Server.start ?domains ~store addr
    in
    let bound = sockaddr_string (Server.sockaddr srv) in
    let head = Mvcc.head store ~branch:Mvcc.main_branch in
    if json then
      print_endline
        (J.to_string
           (envelope `Ok
              (J.Obj
                 [ ("dir", J.String dir);
                   ("listening", J.String bound);
                   ("objects", J.Int (Mvcc.count head));
                   ("version", J.Int (Mvcc.version head));
                   ("txn_applied", J.Int o.Mvcc.txn_applied);
                   ("txn_discarded", J.Int o.Mvcc.txn_discarded)
                 ])))
    else
      Fmt.pr "serving %s on %s (%d object(s), version %d, %d txn(s) replayed)@."
        dir bound (Mvcc.count head) (Mvcc.version head) o.Mvcc.txn_applied;
    (* stdout is the readiness signal for scripts that spawn us *)
    flush stdout;
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    while not (Atomic.get stop) do
      Unix.sleepf 0.1
    done;
    Server.stop srv;
    Mvcc.close store;
    if not json then Fmt.pr "shut down.@.";
    0
  with
  | Database.Store_error m -> die_msg m
  | Wal.Wal_error m -> die_msg m
  | Unix.Unix_error (e, fn, arg) ->
      die_msg (Fmt.str "%s %s: %s" fn arg (Unix.error_message e))

(* `odb connect TARGET` — a scripting client: one request line per
   stdin line, one response line per stdout line.  TARGET is a store
   directory (implying DIR/odb.sock), a socket path, or HOST:PORT with
   --tcp. *)
let connect_cmd target tcp json =
  setup "connect" json;
  let addr =
    match (target, tcp) with
    | Some _, Some _ -> die_msg "TARGET and --tcp are mutually exclusive"
    | None, Some spec -> parse_host_port spec
    | Some t, None ->
        if Sys.file_exists t && Sys.is_directory t then
          Unix.ADDR_UNIX (default_socket t)
        else Unix.ADDR_UNIX t
    | None, None -> die_msg "odb connect requires a TARGET (directory or socket) or --tcp HOST:PORT"
  in
  match Server.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
      die_msg
        (Fmt.str "cannot connect to %s: %s" (sockaddr_string addr)
           (Unix.error_message e))
  | client ->
      let exchanges = ref [] in
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line when String.trim line = "" -> loop ()
        | Some line -> (
            match Server.request client (String.trim line) with
            | exception End_of_file ->
                if not json then Fmt.epr "error: server closed the connection@."
            | resp ->
                if json then exchanges := (String.trim line, resp) :: !exchanges
                else print_endline resp;
                loop ())
      in
      Fun.protect ~finally:(fun () -> Server.close_client client) loop;
      if json then
        finish `Ok
          ~data:
            (J.Obj
               [ ("target", J.String (sockaddr_string addr));
                 ("exchanges",
                  J.List
                    (List.rev_map
                       (fun (req, resp) ->
                         J.Obj
                           [ ("request", J.String req);
                             ("response", J.String resp)
                           ])
                       !exchanges))
               ])
      else 0

(* --- replicate / promote / route ------------------------------------ *)

module Replica = Tdp_replica.Replica
module Router = Tdp_replica.Router

(* `odb replicate PRIMARY_DIR` — bootstrap a read replica from the
   primary's snapshot, tail wal.log + txn.log, and serve the applied
   state read-only.  With --save DIR the applied state is persisted as
   a store directory at startup and on clean shutdown — the input to
   `odb promote`. *)
let replicate_cmd primary_dir socket tcp save domains interval json =
  setup "replicate" json;
  let schema_path = Filename.concat primary_dir "schema.odb" in
  if not (Sys.file_exists schema_path) then
    die_msg
      (Fmt.str "%s not found (is %s a store directory?)" schema_path primary_dir);
  let schema =
    (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema
  in
  let addr =
    match (socket, tcp) with
    | Some _, Some _ -> die_msg "--socket and --tcp are mutually exclusive"
    | None, Some spec -> parse_host_port spec
    | Some path, None -> Unix.ADDR_UNIX path
    | None, None -> Unix.ADDR_UNIX (Filename.concat primary_dir "replica.sock")
  in
  try
    let r =
      Replica.open_ ~load_schema:store_schema_loader ~schema primary_dir
    in
    let shipped = Replica.poll r in
    (match save with Some dir -> Replica.save r ~dir | None -> ());
    let info =
      { Server.ri_seqs = (fun () -> Replica.applied_seqs r);
        ri_lag = (fun () -> Replica.lag r)
      }
    in
    (* sessions pick up the replica's *current* store at connect time,
       so a resync (primary checkpointed past us) is visible to new
       connections; live sessions keep their snapshot-consistent view *)
    let srv =
      Server.start_handler ?domains
        (fun () ->
          Server.store_handler ~mode:(Server.Read_only info)
            ~store:(Replica.store r) ())
        addr
    in
    let bound = sockaddr_string (Server.sockaddr srv) in
    let wal_seq, txn_seq = Replica.applied_seqs r in
    if json then
      print_endline
        (J.to_string
           (envelope `Ok
              (J.Obj
                 [ ("primary", J.String primary_dir);
                   ("listening", J.String bound);
                   ("wal_seq", J.Int wal_seq);
                   ("txn_seq", J.Int txn_seq);
                   ("shipped", J.Int shipped)
                 ])))
    else
      Fmt.pr
        "replicating %s on %s (read-only; wal %d, txn %d; %d record(s) \
         shipped at start)@."
        primary_dir bound wal_seq txn_seq shipped;
    (* stdout is the readiness signal for scripts that spawn us *)
    flush stdout;
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let warned = ref false in
    while not (Atomic.get stop) do
      ignore (Replica.poll r);
      (match Replica.status r with
      | Replica.Halted reason when not !warned ->
          warned := true;
          Fmt.epr
            "warning: replication halted: %s (still serving the last applied \
             state)@."
            reason
      | _ -> ());
      Unix.sleepf interval
    done;
    Server.stop srv;
    (match save with Some dir -> Replica.save r ~dir | None -> ());
    Replica.close r;
    if not json then Fmt.pr "shut down.@.";
    0
  with
  | Database.Store_error m -> die_msg m
  | Wal.Wal_error m -> die_msg m
  | Unix.Unix_error (e, fn, arg) ->
      die_msg (Fmt.str "%s %s: %s" fn arg (Unix.error_message e))

(* `odb promote REPLICA_DIR --primary PRIMARY_DIR` — the failover
   judgement: exit 0 iff the saved replica state is exactly the
   primary's durable state (or a lag-forced prefix).  A diverged
   replica is always refused. *)
let promote_cmd replica_dir primary_dir allow_lag json =
  setup "promote" json;
  match Replica.promote ~allow_lag ~replica_dir ~primary_dir () with
  | exception Database.Store_error m -> die_msg m
  | exception Wal.Wal_error m -> die_msg m
  | Error e ->
      (* a refusal is the command doing its job — a domain report
         (exit 1), not a usage error *)
      let msg = Replica.promote_error_message e in
      let kind =
        match e with
        | Replica.Diverged _ -> "diverged"
        | Replica.Lagging _ -> "lagging"
        | Replica.Unpromotable _ -> "unpromotable"
      in
      if json then
        finish `Findings
          ~data:(J.Obj [ ("refused", J.String kind); ("reason", J.String msg) ])
      else begin
        Fmt.epr "refused: %s@." msg;
        1
      end
  | Ok p ->
      if json then
        finish `Ok
          ~data:
            (J.Obj
               [ ("replica_dir", J.String replica_dir);
                 ("primary_dir", J.String primary_dir);
                 ("replica_wal", J.Int p.Replica.replica_wal);
                 ("replica_txn", J.Int p.replica_txn);
                 ("primary_ckpt_wal", J.Int p.primary_ckpt_wal);
                 ("primary_ckpt_txn", J.Int p.primary_ckpt_txn);
                 ("primary_last_wal", J.Int p.primary_last_wal);
                 ("primary_last_txn", J.Int p.primary_last_txn)
               ])
      else begin
        Fmt.pr
          "promotable: %s is at wal %d txn %d (primary durable tip: wal %d \
           txn %d)@.serve it as the new primary: odb serve %s@."
          replica_dir p.Replica.replica_wal p.replica_txn p.primary_last_wal
          p.primary_last_txn replica_dir;
        0
      end

(* `odb route LO-HI=TARGET...` — serve the OID-range router: point
   reads routed by OID, extent/count fanned out and merged. *)
let route_cmd specs socket tcp domains json =
  setup "route" json;
  let addr =
    match (socket, tcp) with
    | Some _, Some _ -> die_msg "--socket and --tcp are mutually exclusive"
    | None, Some spec -> parse_host_port spec
    | Some path, None -> Unix.ADDR_UNIX path
    | None, None ->
        die_msg "odb route requires --socket PATH or --tcp HOST:PORT to listen on"
  in
  let backends =
    List.map
      (fun spec ->
        match Router.backend_of_spec spec with
        | Ok b -> b
        | Error m -> die_msg m)
      specs
  in
  match Router.make backends with
  | Error m -> die_msg m
  | Ok router -> (
      try
        let srv = Router.start ?domains router addr in
        let bound = sockaddr_string (Server.sockaddr srv) in
        if json then
          print_endline
            (J.to_string
               (envelope `Ok
                  (J.Obj
                     [ ("listening", J.String bound);
                       ("backends",
                        J.List
                          (List.map
                             (fun (b : Router.backend) -> J.String b.b_name)
                             (Router.backends router)))
                     ])))
        else
          Fmt.pr "routing %d backend(s) on %s@." (List.length backends) bound;
        flush stdout;
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        while not (Atomic.get stop) do
          Unix.sleepf 0.1
        done;
        Server.stop srv;
        if not json then Fmt.pr "shut down.@.";
        0
      with Unix.Unix_error (e, fn, arg) ->
        die_msg (Fmt.str "%s %s: %s" fn arg (Unix.error_message e)))

(* --- dot ----------------------------------------------------------- *)

let dot_cmd file apply_views json =
  setup "dot" json;
  let r = load file in
  let schema =
    if apply_views then fst (or_die (Elaborate.apply_views r)) else r.schema
  in
  let dot = Dot.of_hierarchy ~name:file (Schema.hierarchy schema) in
  if json then finish `Ok ~data:(J.Obj [ ("dot", J.String dot) ])
  else begin
    Fmt.pr "%s" dot;
    0
  end

(* --- stats --------------------------------------------------------- *)

(* Pretty-print a metrics envelope (as produced by [--metrics=json] or
   by [bench --json] under "metrics").  Reads stdin when FILE is
   omitted, so `odb --metrics=json ... | odb stats` composes. *)
let stats_cmd file json =
  setup "stats" json;
  let src =
    match file with Some f -> read_file f | None -> In_channel.input_all stdin
  in
  match J.parse src with
  | Error msg -> die_msg (Fmt.str "invalid metrics JSON: %s" msg)
  | Ok j ->
      let snap = Obs.Metrics.of_json j in
      if json then finish `Ok ~data:(Obs.Metrics.to_json snap)
      else begin
        Fmt.pr "%a@." Obs.Metrics.pp snap;
        0
      end

(* --- global observability flags ------------------------------------- *)

let obs_metrics = ref `Off
let obs_trace = ref None

(* Strip the leading global flags (everything up to the subcommand
   name); flags after the subcommand belong to the subcommand — in
   particular `odb methods --trace` (the IsApplicable event trace) is
   unrelated to the global `odb --trace FILE`. *)
let split_global_flags argv =
  let rec go acc = function
    | [] -> List.rev acc
    | "--metrics" :: rest ->
        obs_metrics := `Pretty;
        go acc rest
    | arg :: rest when String.starts_with ~prefix:"--metrics=" arg -> (
        match String.sub arg 10 (String.length arg - 10) with
        | "pretty" ->
            obs_metrics := `Pretty;
            go acc rest
        | "json" ->
            obs_metrics := `Json;
            go acc rest
        | other ->
            Fmt.epr "odb: unknown metrics mode %S (expected pretty or json)@." other;
            exit 2)
    | "--trace" :: rest -> (
        match rest with
        | path :: rest ->
            obs_trace := Some path;
            go acc rest
        | [] ->
            Fmt.epr "odb: --trace requires a FILE argument@.";
            exit 2)
    | arg :: rest when String.starts_with ~prefix:"--trace=" arg ->
        obs_trace := Some (String.sub arg 8 (String.length arg - 8));
        go acc rest
    | rest -> List.rev_append acc rest
  in
  match Array.to_list argv with
  | [] -> argv
  | prog :: args -> Array.of_list (prog :: go [] args)

let obs_setup () =
  (match !obs_metrics with `Off -> () | `Pretty | `Json -> Obs.Metrics.enable ());
  match !obs_trace with
  | None -> ()
  | Some path -> Obs.Trace.set_sink (Obs.Sink.file path)

(* Runs via at_exit so the report survives mid-command [exit] calls
   (die, usage errors). *)
let obs_teardown () =
  (match !obs_metrics with
  | `Off -> ()
  | `Pretty -> Fmt.epr "%a@." Obs.Metrics.pp (Obs.Metrics.snapshot ())
  | `Json ->
      print_endline (J.to_string (Obs.Metrics.to_json (Obs.Metrics.snapshot ()))));
  Obs.Trace.close ()

(* --- cmdliner wiring ------------------------------------------------ *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Schema file.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print one JSON envelope line {\"command\",\"status\",\"exit\",\"data\"} \
           instead of human-readable output.")

let check_t =
  let doc = "Parse, validate and type-check a schema file." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd $ file_arg $ json_flag)

let lint_t =
  let doc =
    "Run the static-analysis passes (body type checks, flow lints, schema \
     lints, projection pre-checks) and report structured diagnostics.  Exits \
     1 when any error-severity diagnostic fires."
  in
  let code =
    Arg.(
      value
      & opt (some string) None
      & info [ "code" ] ~docv:"TDPxxx" ~doc:"Only report diagnostics with this code.")
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint_cmd $ file_arg $ json_flag $ code)

let infer_t =
  let doc =
    "Infer the principal schema of every declared view pipeline: the weakest \
     requirements on its source types under which derivation succeeds, \
     independent of the concrete schema.  Each principal is then checked for \
     instantiation against the file's schema.  Exits 1 when any view is \
     ill-typed or not instantiated."
  in
  Cmd.v (Cmd.info "infer" ~doc) Term.(const infer_cmd $ file_arg $ json_flag)

let repl_t =
  let doc =
    "Run the interactive statement language (docs/language.md) over TARGET: \
     a schema file (fresh in-memory store, the file's views predefined) or \
     a store directory (the recovered snapshot+WAL state; mutations stay in \
     memory).  Reads statements from stdin with line editing and multi-line \
     continuation; with --script, replays FILE with prompts and input \
     echoed so the transcript is deterministic."
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET" ~doc:"Schema file or store directory.")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Replay statements from FILE instead of stdin.")
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const repl_cmd $ target $ script $ json_flag)

let apply_t =
  let doc = "Derive every declared view, refactoring the hierarchy." in
  let collapse =
    Arg.(value & flag & info [ "collapse" ] ~doc:"Collapse empty surrogates afterwards.")
  in
  let print_schema =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the refactored schema.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Print the hierarchy as Graphviz DOT.") in
  let show_diff =
    Arg.(value & flag & info [ "diff" ] ~doc:"Print the structural changes made.")
  in
  Cmd.v (Cmd.info "apply" ~doc)
    Term.(const apply_cmd $ file_arg $ collapse $ print_schema $ dot $ show_diff $ json_flag)

let methods_t =
  let doc = "Classify method applicability for a projection (Section 4)." in
  let source =
    Arg.(
      required
      & opt (some string) None
      & info [ "source" ] ~docv:"TYPE" ~doc:"Source type of the projection.")
  in
  let attrs =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "attrs" ] ~docv:"ATTRS" ~doc:"Comma-separated projection list.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the IsApplicable event trace.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Explain every method's verdict.")
  in
  Cmd.v (Cmd.info "methods" ~doc)
    Term.(const methods_cmd $ file_arg $ source $ attrs $ trace $ explain $ json_flag)

let dispatch_t =
  let doc =
    "Resolve a generic-function call: print the most specific applicable \
     method (and, with --all, the full call-next-method chain).  Prints a \
     diagnostic and exits 1 when no method applies or the call is ambiguous."
  in
  let apply_views =
    Arg.(value & flag & info [ "apply-views" ] ~doc:"Derive views first.")
  in
  let gf =
    Arg.(
      required
      & opt (some string) None
      & info [ "gf" ] ~docv:"NAME" ~doc:"The generic function to dispatch.")
  in
  let args =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "args" ] ~docv:"TYPES" ~doc:"Comma-separated argument types.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Print every applicable method, most specific first.")
  in
  Cmd.v (Cmd.info "dispatch" ~doc)
    Term.(const dispatch_cmd $ file_arg $ apply_views $ gf $ args $ all $ json_flag)

let query_t =
  let doc = "Evaluate a declared view over a data file (see Dump format)." in
  let data_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DATA" ~doc:"Data dump file.")
  in
  let view_name =
    Arg.(
      required
      & opt (some string) None
      & info [ "view" ] ~docv:"NAME" ~doc:"The declared view to evaluate.")
  in
  let materialize =
    Arg.(
      value & flag
      & info [ "materialize" ] ~doc:"Copy instances into the view type (fresh OIDs).")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const query_cmd $ file_arg $ data_arg $ view_name $ materialize $ json_flag)

let store_t =
  let doc =
    "Operate a durable object store directory (snapshot + write-ahead log). \
     $(b,init) creates DIR from --schema; $(b,append) journals a --script of \
     mutations; $(b,recover) replays snapshot+WAL and reports; \
     $(b,checkpoint) folds the WAL into a fresh atomic snapshot; \
     $(b,verify) checks WAL integrity (exit 1 on corruption); $(b,dump) \
     prints the recovered state; $(b,stats) prints columnar block-layout \
     statistics."
  in
  let action =
    let actions =
      [ ("init", Init); ("append", Append); ("recover", Recover);
        ("checkpoint", Checkpoint); ("verify", Verify); ("dump", DumpDb);
        ("stats", Stats) ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:"One of init, append, recover, checkpoint, verify, dump, stats.")
  in
  let dir =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"FILE" ~doc:"Schema file (init only).")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Mutation script, one op per line (append only).")
  in
  Cmd.v (Cmd.info "store" ~doc)
    Term.(const store_cmd $ action $ dir $ schema $ script $ json_flag)

let serve_t =
  let doc =
    "Serve a transactional store directory to concurrent clients over a \
     line protocol (Unix socket by default, DIR/odb.sock).  Sessions get \
     snapshot isolation: each transaction works against an immutable \
     snapshot of its branch and commits with first-writer-wins conflict \
     detection; commits are write-ahead logged to DIR/txn.log.  Runs until \
     SIGINT/SIGTERM."
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory (odb store init).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path (default DIR/odb.sock).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on TCP instead of a Unix socket (port 0 picks one).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N" ~doc:"Accepter domains (default: derived from the core count).")
  in
  let no_sync =
    Arg.(
      value & flag
      & info [ "no-sync" ] ~doc:"Skip the per-record fsync of the transaction log (faster, less durable).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve_cmd $ dir $ socket $ tcp $ domains $ no_sync $ json_flag)

let connect_t =
  let doc =
    "Connect to an odb server: each stdin line is sent as one request, each \
     response printed on stdout — the scripting and testing client.  TARGET \
     is a store directory (implying DIR/odb.sock) or a socket path."
  in
  let target =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc:"Store directory or Unix socket path.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")
  in
  Cmd.v (Cmd.info "connect" ~doc) Term.(const connect_cmd $ target $ tcp $ json_flag)

let replicate_t =
  let doc =
    "Serve a read replica of a primary store directory: bootstrap from \
     DIR/snapshot.dump, tail DIR/wal.log and DIR/txn.log record-at-a-time, \
     and serve the applied state read-only (mutating verbs are refused; \
     $(b,seq) and $(b,lag) report the shipping position).  With --save the \
     applied state is persisted as a store directory at startup and on \
     clean shutdown — the input to $(b,odb promote).  Runs until \
     SIGINT/SIGTERM."
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PRIMARY_DIR" ~doc:"The primary's store directory.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix socket path (default PRIMARY_DIR/replica.sock).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP instead of a Unix socket (port 0 picks one).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Persist the applied state as a store directory (startup and \
                clean shutdown).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Accepter domains (default: derived from the core count).")
  in
  let interval =
    Arg.(
      value
      & opt float 0.1
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Polling interval between shipping rounds (default 0.1).")
  in
  Cmd.v
    (Cmd.info "replicate" ~doc)
    Term.(
      const replicate_cmd $ dir $ socket $ tcp $ save $ domains $ interval
      $ json_flag)

let promote_t =
  let doc =
    "Judge a saved replica state (odb replicate --save) for failover: exit \
     0 iff it is exactly the primary's durable state, so it can be served \
     as the new primary as-is.  A replica that diverged from primary \
     history — records folded into a checkpoint it never shipped, or \
     records beyond the primary's durable tip — is always refused; one \
     that merely lags is refused unless --allow-lag."
  in
  let replica_dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REPLICA_DIR" ~doc:"Saved replica state (odb replicate --save).")
  in
  let primary_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "primary" ] ~docv:"PRIMARY_DIR"
          ~doc:"The (stopped) primary's store directory.")
  in
  let allow_lag =
    Arg.(
      value & flag
      & info [ "allow-lag" ]
          ~doc:"Promote a replica strictly behind the durable tip, \
                discarding the unshipped committed records.")
  in
  Cmd.v
    (Cmd.info "promote" ~doc)
    Term.(const promote_cmd $ replica_dir $ primary_dir $ allow_lag $ json_flag)

let route_t =
  let doc =
    "Serve an OID-range router over shard backends.  Each BACKEND is \
     LO-HI=TARGET (or open-ended LO-=TARGET): an inclusive OID range and \
     the backend's address (HOST:PORT, or a Unix-socket path).  Point \
     reads (get, typeof) are routed to the owning backend; extent fans \
     out to every backend and merges the sorted OID runs; count sums.  \
     Mutating verbs are refused.  Runs until SIGINT/SIGTERM."
  in
  let specs =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"BACKEND" ~doc:"Backend spec, LO-HI=TARGET.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP instead (port 0 picks one).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Accepter domains (default: derived from the core count).")
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(const route_cmd $ specs $ socket $ tcp $ domains $ json_flag)

let dot_t =
  let doc = "Print the type hierarchy as Graphviz DOT." in
  let apply_views =
    Arg.(value & flag & info [ "apply-views" ] ~doc:"Derive views first.")
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const dot_cmd $ file_arg $ apply_views $ json_flag)

let stats_t =
  let doc =
    "Pretty-print a metrics dump (the envelope emitted by --metrics=json or \
     embedded in bench --json reports).  Reads stdin when FILE is omitted."
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Metrics JSON file.")
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const stats_cmd $ file $ json_flag)

let main =
  let doc = "type derivation using the projection operation (Agrawal & DeMichiel, 1994)" in
  Cmd.group
    (Cmd.info "odb" ~version:"1.0.0" ~doc)
    [ check_t; lint_t; infer_t; repl_t; apply_t; methods_t; dispatch_t;
      query_t; store_t; serve_t; connect_t; replicate_t; promote_t; route_t;
      dot_t; stats_t ]

(* CLI boundary: domain failures that escape a subcommand — any
   structured [Error.E] a command did not turn into a result — are
   diagnostics for the user, not crashes, so disable cmdliner's
   catch-all (which dumps a backtrace) and render them here.  Cmdliner's
   own reserved codes (124 usage, 123/125 internal) are folded into the
   documented exit-code convention as 2. *)
let () =
  let argv = split_global_flags Sys.argv in
  obs_setup ();
  at_exit obs_teardown;
  match Cmd.eval' ~argv ~catch:false main with
  | code -> exit (if code > 2 then 2 else code)
  | exception Error.E e ->
      Fmt.epr "error: %a@." Error.pp e;
      exit 2
