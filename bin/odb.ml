(* odb — command-line front end for the type-derivation library.

     odb check schema.odb
     odb lint schema.odb [--json] [--code TDPxxx]
     odb apply schema.odb [--collapse] [--print | --dot]
     odb methods schema.odb --source T --attrs a,b,c [--trace]
     odb dispatch schema.odb --gf f --args T1,T2 [--all]
     odb store ACTION dir [--schema FILE] [--script FILE]
     odb dot schema.odb

   Schema files use the surface syntax of Tdp_lang (see README.md). *)

open Tdp_core
module Elaborate = Tdp_lang.Elaborate
module Printer = Tdp_lang.Printer
module Optimize = Tdp_algebra.Optimize
module Static_check = Tdp_dispatch.Static_check
module Dispatch = Tdp_dispatch.Dispatch
module Diagnostic = Tdp_analysis.Diagnostic
module Lint = Tdp_analysis.Lint

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die ?file e =
  (match (file, Error.position e) with
  | Some f, Some (l, c) -> Fmt.epr "error: %s:%d:%d: %s@." f l c (Error.message e)
  | Some f, None -> Fmt.epr "error: %s: %s@." f (Error.message e)
  | None, _ -> Fmt.epr "error: %a@." Error.pp e);
  exit 1

let or_die ?file = function Ok v -> v | Error e -> die ?file e

let load path = or_die ~file:path (Elaborate.load (read_file path))

let summary schema =
  let h = Schema.hierarchy schema in
  let surrogates =
    Hierarchy.fold (fun d n -> if Type_def.is_surrogate d then n + 1 else n) h 0
  in
  Fmt.pr "types: %d (%d surrogates)  generic functions: %d  methods: %d@."
    (Hierarchy.cardinal h) surrogates
    (List.length (Schema.gfs schema))
    (List.length (Schema.all_methods schema))

(* --- check --------------------------------------------------------- *)

let check_cmd file =
  let r = load file in
  summary r.schema;
  List.iter
    (fun (name, expr) ->
      Fmt.pr "view %s = %a@." name Tdp_algebra.View.pp_expr expr)
    r.views;
  (* Elaboration already validated the hierarchy and type-checked the
     bodies; the remaining well-formedness hazard is two methods of one
     generic function with identical signatures. *)
  match
    ( Hierarchy.validate (Schema.hierarchy r.schema),
      Static_check.duplicate_signatures r.schema )
  with
  | Ok (), [] ->
      Fmt.pr "ok.@.";
      0
  | hierarchy, dups ->
      (match hierarchy with
      | Error e -> Fmt.epr "error: %s: %s@." file (Error.message e)
      | Ok () -> ());
      List.iter (fun i -> Fmt.epr "error: %s: %a@." file Static_check.pp_issue i) dups;
      1

(* --- lint ---------------------------------------------------------- *)

let lint_cmd file json code =
  (match code with
  | Some c when not (List.exists (fun (c', _, _) -> c' = c) Lint.codes) ->
      Fmt.epr "error: unknown diagnostic code %s (see docs/diagnostics.md)@." c;
      exit 2
  | _ -> ());
  let diags =
    match Elaborate.load_unchecked (read_file file) with
    | Error e -> [ Lint.of_error ~file e ]
    | Ok r -> Lint.lint_program ~file r.schema ~views:r.views
  in
  let diags =
    match code with
    | None -> diags
    | Some c -> List.filter (fun (d : Diagnostic.t) -> d.code = c) diags
  in
  if json then List.iter (fun d -> print_endline (Diagnostic.to_json d)) diags
  else begin
    List.iter (fun d -> Fmt.pr "%a@." Diagnostic.pp d) diags;
    let errors, warnings, infos = Diagnostic.count diags in
    if diags = [] then Fmt.pr "no issues found.@."
    else Fmt.pr "%d error(s), %d warning(s), %d info@." errors warnings infos
  end;
  if List.exists Diagnostic.is_error diags then 1 else 0

(* --- apply --------------------------------------------------------- *)

let apply_cmd file collapse print_schema dot show_diff =
  let r = load file in
  let schema, derived = or_die (Elaborate.apply_views r) in
  if show_diff then
    Fmt.pr "@[<v>%a@]@." Diff.pp (Diff.schema_changes r.schema schema);
  List.iter
    (fun (name, ty_) ->
      Fmt.pr "view %-16s -> %s {%s}@." name (Type_name.to_string ty_)
        (String.concat ", "
           (List.map Attr_name.to_string
              (Hierarchy.all_attribute_names (Schema.hierarchy schema) ty_))))
    derived;
  let schema =
    if collapse then begin
      let protect = Type_name.Set.of_list (List.map snd derived) in
      let collapsed, removed = or_die (Optimize.collapse ~protect schema) in
      Fmt.pr "collapsed %d empty surrogates@." (List.length removed);
      collapsed
    end
    else schema
  in
  summary schema;
  if print_schema then Fmt.pr "@.%s" (Printer.print schema);
  if dot then Fmt.pr "@.%s" (Dot.of_hierarchy ~name:file (Schema.hierarchy schema));
  0

(* --- methods ------------------------------------------------------- *)

let methods_cmd file source attrs trace explain =
  let r = load file in
  let projection = List.map Attr_name.of_string attrs in
  let source = Type_name.of_string source in
  let analysis = or_die (Applicability.analyze r.schema ~source ~projection) in
  if trace then
    List.iter (fun e -> Fmt.pr "  %a@." Applicability.pp_event e) analysis.trace;
  Fmt.pr "%a@." Applicability.pp_result analysis;
  if explain then
    Method_def.Key.Set.iter
      (fun k ->
        Fmt.pr "  %s@." (Applicability.explain r.schema analysis ~source ~projection k))
      analysis.candidates;
  0

(* --- dispatch ------------------------------------------------------ *)

let dispatch_cmd file apply_views gf args all =
  let r = load file in
  let schema =
    if apply_views then fst (or_die (Elaborate.apply_views r)) else r.schema
  in
  let d = Dispatch.create schema in
  let arg_types = List.map Type_name.of_string args in
  let h = Schema.hierarchy schema in
  List.iter
    (fun ty_ ->
      if not (Hierarchy.mem h ty_) then
        die ~file (Error.Unknown_type ty_))
    arg_types;
  let call = Fmt.str "%s(%s)" gf (String.concat "," args) in
  match Dispatch.most_specific d ~gf ~arg_types with
  | None ->
      Fmt.epr "error: %s: no applicable method for %s@." file call;
      1
  | Some m ->
      Fmt.pr "%s -> %a@." call Method_def.Key.pp (Method_def.key m);
      if all then
        List.iteri
          (fun i m ->
            Fmt.pr "  %d. %a(%s)@." (i + 1) Method_def.Key.pp (Method_def.key m)
              (String.concat ","
                 (List.map Type_name.to_string
                    (Signature.param_types (Method_def.signature m)))))
          (Dispatch.applicable d ~gf ~arg_types);
      0

(* --- query --------------------------------------------------------- *)

let query_cmd schema_file data_file view_name materialize =
  let r = load schema_file in
  let schema, _derived = or_die (Elaborate.apply_views r) in
  let expr =
    match List.assoc_opt view_name r.views with
    | Some e -> e
    | None ->
        Fmt.epr "error: no view named %S in %s@." view_name schema_file;
        exit 1
  in
  let db = Tdp_store.Database.create schema in
  (try ignore (Tdp_store.Dump.load_into db (read_file data_file)) with
  | Tdp_store.Dump.Parse_error { line; message } ->
      Fmt.epr "error: %s:%d: %s@." data_file line message;
      exit 1
  | Tdp_store.Database.Store_error m ->
      Fmt.epr "error: %s@." m;
      exit 1);
  let h = Schema.hierarchy schema in
  let view_type = Type_name.of_string view_name in
  let attrs = Hierarchy.all_attribute_names h view_type in
  let oids =
    if materialize then
      Tdp_algebra.View.materialize db ~view_type expr
    else Tdp_algebra.View.instances db expr
  in
  List.iter
    (fun oid ->
      Fmt.pr "%s %s" (Fmt.str "%a" Tdp_store.Oid.pp oid)
        (Type_name.to_string (Tdp_store.Database.type_of db oid));
      List.iter
        (fun a ->
          Fmt.pr " %s=%s" (Attr_name.to_string a)
            (Tdp_store.Dump.value_to_string (Tdp_store.Database.get_attr db oid a)))
        attrs;
      Fmt.pr "@.")
    oids;
  Fmt.pr "%d instance(s) of view %s@." (List.length oids) view_name;
  0

(* --- store --------------------------------------------------------- *)

(* A durable store directory:

     DIR/schema.odb     surface-syntax schema (copied at init)
     DIR/snapshot.dump  latest atomic snapshot (Dump.save)
     DIR/wal.log        write-ahead log of mutations since the snapshot

   Mutation scripts reuse the WAL payload grammar, one op per line:

     new #1 Employee ssn=1 name="alice"
     set #1 pay_rate=60.0
     del #1 nullify
     schema "type ..."                       -- swap in an evolved schema *)

module Database = Tdp_store.Database
module Dump = Tdp_store.Dump
module Wal = Tdp_store.Wal

type store_action = Init | Append | Recover | Checkpoint | Verify | DumpDb

let store_schema_loader src = (Elaborate.load_exn src).Elaborate.schema

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let pp_corruption ppf (c : Wal.corruption) =
  Fmt.pf ppf "wal corrupt at byte %d (expected seq %d): %s" c.offset c.at_seq
    c.reason

let parse_script file =
  read_file file
  |> String.split_on_char '\n'
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter_map (fun (i, l) ->
         if l = "" || (String.length l >= 2 && String.sub l 0 2 = "--") then None
         else Some (Wal.payload_of_string ~line:i l))

let store_cmd action dir schema_file script_file =
  let schema_path = Filename.concat dir "schema.odb"
  and snapshot_path = Filename.concat dir "snapshot.dump"
  and wal_path = Filename.concat dir "wal.log" in
  let recover schema =
    Wal.recover ~load_schema:store_schema_loader ~schema ~snapshot_path
      ~wal_path ()
  in
  let warn_corruption = function
    | None -> ()
    | Some c -> Fmt.epr "warning: %a; recovered the prefix before it@." pp_corruption c
  in
  try
    match action with
    | Init ->
        let sf =
          match schema_file with
          | Some f -> f
          | None ->
              Fmt.epr "error: odb store init requires --schema FILE@.";
              exit 2
        in
        let src = read_file sf in
        let r = or_die ~file:sf (Elaborate.load src) in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        write_file schema_path src;
        Dump.save ~path:snapshot_path (Database.create r.schema);
        Wal.close (Wal.writer_create ~path:wal_path ~next_seq:1 ());
        Fmt.pr "initialized %s (%d types, empty extent)@." dir
          (Hierarchy.cardinal (Schema.hierarchy r.schema));
        0
    | Verify ->
        let wal = if Sys.file_exists wal_path then read_file wal_path else "" in
        let d = Wal.decode wal in
        let schema = (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema in
        let snap =
          if Sys.file_exists snapshot_path then read_file snapshot_path else ""
        in
        let db = Database.create schema in
        let snap_objs = List.length (Dump.load_into db snap) in
        Fmt.pr "snapshot: %d object(s), wal-seq %d@." snap_objs (Dump.wal_seq snap);
        Fmt.pr "wal: %d intact record(s), %d byte(s) valid, next seq %d@."
          (List.length d.entries) d.valid_bytes d.next_seq;
        (match d.corruption with
        | None ->
            Fmt.pr "ok.@.";
            0
        | Some c ->
            Fmt.pr "%a@." pp_corruption c;
            1)
    | (Append | Recover | Checkpoint | DumpDb) as action -> (
        let schema =
          (or_die ~file:schema_path (Elaborate.load (read_file schema_path))).schema
        in
        let r = recover schema in
        match action with
        | Recover ->
            warn_corruption r.corruption;
            Fmt.pr
              "recovered %d object(s): snapshot seq %d + %d wal record(s), \
               last seq %d@."
              (Database.count r.db) r.snapshot_seq r.replayed r.last_seq;
            0
        | DumpDb ->
            warn_corruption r.corruption;
            print_string (Dump.to_string r.db);
            0
        | Checkpoint ->
            warn_corruption r.corruption;
            Dump.save ~wal_seq:r.last_seq ~path:snapshot_path r.db;
            Wal.close (Wal.writer_create ~path:wal_path ~next_seq:(r.last_seq + 1) ());
            Fmt.pr "checkpointed %d object(s) at seq %d@." (Database.count r.db)
              r.last_seq;
            0
        | Append ->
            let sf =
              match script_file with
              | Some f -> f
              | None ->
                  Fmt.epr "error: odb store append requires --script FILE@.";
                  exit 2
            in
            let ops = parse_script sf in
            (match r.corruption with
            | Some c ->
                Fmt.epr "warning: %a; truncating the torn tail@." pp_corruption c;
                Wal.repair ~path:wal_path r.wal_valid_bytes
            | None -> ());
            let w = Wal.writer_open ~path:wal_path ~next_seq:(r.last_seq + 1) () in
            Fun.protect
              ~finally:(fun () ->
                Database.set_journal r.db None;
                Wal.close w)
              (fun () ->
                Wal.attach w r.db;
                List.iter (Wal.apply ~load_schema:store_schema_loader r.db) ops);
            Fmt.pr "applied %d operation(s); %d object(s), wal at seq %d@."
              (List.length ops) (Database.count r.db) (Wal.writer_seq w - 1);
            0
        | Init | Verify -> assert false)
  with
  | Database.Store_error m ->
      Fmt.epr "error: %s@." m;
      1
  | Dump.Parse_error { line; message } ->
      Fmt.epr "error: line %d: %s@." line message;
      1
  | Wal.Wal_error m ->
      Fmt.epr "error: %s@." m;
      1

(* --- dot ----------------------------------------------------------- *)

let dot_cmd file apply_views =
  let r = load file in
  let schema =
    if apply_views then fst (or_die (Elaborate.apply_views r)) else r.schema
  in
  Fmt.pr "%s" (Dot.of_hierarchy ~name:file (Schema.hierarchy schema));
  0

(* --- cmdliner wiring ------------------------------------------------ *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Schema file.")

let check_t =
  let doc = "Parse, validate and type-check a schema file." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd $ file_arg)

let lint_t =
  let doc =
    "Run the static-analysis passes (body type checks, flow lints, schema \
     lints, projection pre-checks) and report structured diagnostics.  Exits \
     1 when any error-severity diagnostic fires."
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per line.")
  in
  let code =
    Arg.(
      value
      & opt (some string) None
      & info [ "code" ] ~docv:"TDPxxx" ~doc:"Only report diagnostics with this code.")
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint_cmd $ file_arg $ json $ code)

let apply_t =
  let doc = "Derive every declared view, refactoring the hierarchy." in
  let collapse =
    Arg.(value & flag & info [ "collapse" ] ~doc:"Collapse empty surrogates afterwards.")
  in
  let print_schema =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the refactored schema.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Print the hierarchy as Graphviz DOT.") in
  let show_diff =
    Arg.(value & flag & info [ "diff" ] ~doc:"Print the structural changes made.")
  in
  Cmd.v (Cmd.info "apply" ~doc)
    Term.(const apply_cmd $ file_arg $ collapse $ print_schema $ dot $ show_diff)

let methods_t =
  let doc = "Classify method applicability for a projection (Section 4)." in
  let source =
    Arg.(
      required
      & opt (some string) None
      & info [ "source" ] ~docv:"TYPE" ~doc:"Source type of the projection.")
  in
  let attrs =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "attrs" ] ~docv:"ATTRS" ~doc:"Comma-separated projection list.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the IsApplicable event trace.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Explain every method's verdict.")
  in
  Cmd.v (Cmd.info "methods" ~doc)
    Term.(const methods_cmd $ file_arg $ source $ attrs $ trace $ explain)

let dispatch_t =
  let doc =
    "Resolve a generic-function call: print the most specific applicable \
     method (and, with --all, the full call-next-method chain).  Prints a \
     diagnostic and exits 1 when no method applies or the call is ambiguous."
  in
  let apply_views =
    Arg.(value & flag & info [ "apply-views" ] ~doc:"Derive views first.")
  in
  let gf =
    Arg.(
      required
      & opt (some string) None
      & info [ "gf" ] ~docv:"NAME" ~doc:"The generic function to dispatch.")
  in
  let args =
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "args" ] ~docv:"TYPES" ~doc:"Comma-separated argument types.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Print every applicable method, most specific first.")
  in
  Cmd.v (Cmd.info "dispatch" ~doc)
    Term.(const dispatch_cmd $ file_arg $ apply_views $ gf $ args $ all)

let query_t =
  let doc = "Evaluate a declared view over a data file (see Dump format)." in
  let data_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DATA" ~doc:"Data dump file.")
  in
  let view_name =
    Arg.(
      required
      & opt (some string) None
      & info [ "view" ] ~docv:"NAME" ~doc:"The declared view to evaluate.")
  in
  let materialize =
    Arg.(
      value & flag
      & info [ "materialize" ] ~doc:"Copy instances into the view type (fresh OIDs).")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const query_cmd $ file_arg $ data_arg $ view_name $ materialize)

let store_t =
  let doc =
    "Operate a durable object store directory (snapshot + write-ahead log). \
     $(b,init) creates DIR from --schema; $(b,append) journals a --script of \
     mutations; $(b,recover) replays snapshot+WAL and reports; \
     $(b,checkpoint) folds the WAL into a fresh atomic snapshot; \
     $(b,verify) checks WAL integrity (exit 1 on corruption); $(b,dump) \
     prints the recovered state."
  in
  let action =
    let actions =
      [ ("init", Init); ("append", Append); ("recover", Recover);
        ("checkpoint", Checkpoint); ("verify", Verify); ("dump", DumpDb) ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc:"One of init, append, recover, checkpoint, verify, dump.")
  in
  let dir =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"FILE" ~doc:"Schema file (init only).")
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Mutation script, one op per line (append only).")
  in
  Cmd.v (Cmd.info "store" ~doc)
    Term.(const store_cmd $ action $ dir $ schema $ script)

let dot_t =
  let doc = "Print the type hierarchy as Graphviz DOT." in
  let apply_views =
    Arg.(value & flag & info [ "apply-views" ] ~doc:"Derive views first.")
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const dot_cmd $ file_arg $ apply_views)

let main =
  let doc = "type derivation using the projection operation (Agrawal & DeMichiel, 1994)" in
  Cmd.group
    (Cmd.info "odb" ~version:"1.0.0" ~doc)
    [ check_t; lint_t; apply_t; methods_t; dispatch_t; query_t; store_t; dot_t ]

(* CLI boundary: domain failures that escape a subcommand — an
   ambiguous dispatch, or any structured [Error.E] a command did not
   turn into a result — are diagnostics for the user, not crashes, so
   disable cmdliner's catch-all (which dumps a backtrace) and render
   them here. *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Dispatch.Ambiguous { gf; methods } ->
      Fmt.epr "error: call to %s is ambiguous between %s@." gf
        (String.concat " and "
           (List.map (Fmt.str "%a" Method_def.Key.pp) methods));
      exit 1
  | exception Error.E e ->
      Fmt.epr "error: %a@." Error.pp e;
      exit 1
