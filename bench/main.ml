(* Benchmark and experiment harness.

   The paper's evaluation consists of worked examples (Figures 1-5,
   Examples 1-4), not performance tables.  This harness therefore
   regenerates, for every figure, the exact structure the paper prints
   (tables E1-E6), verifies the preservation claims in bulk (E7), and
   adds the scaling measurements S1-S4 described in EXPERIMENTS.md.

   Run: dune exec bench/main.exe            (tables + bechamel benches)
        dune exec bench/main.exe -- tables  (tables only)
        dune exec bench/main.exe -- bench   (bechamel only)
        dune exec bench/main.exe -- bench --json [--small] [--out FILE]
                                            (machine-readable baseline:
                                             ns/op + cached-vs-uncached
                                             speedups + the schema-index
                                             scaling sweep + store recovery
                                             and MVCC commit throughput + a
                                             Tdp_obs metrics snapshot of one
                                             instrumented pass + the columnar
                                             store sweep + replica/router
                                             throughput + the statement
                                             language's eval path; FILE
                                             defaults to BENCH_10.json,
                                             "-" = stdout)
        dune exec bench/main.exe -- bench --check FILE
                                            (re-measure in --small mode and
                                             fail if a guarded benchmark
                                             regressed >3x vs the baseline
                                             JSON in FILE, or if a required
                                             columnar speedup floor is not
                                             met by the current tree) *)

open Tdp_core
module Fig1 = Tdp_paper.Fig1
module Fig3 = Tdp_paper.Fig3
module Synth = Tdp_synth.Synth
module Dispatch = Tdp_dispatch.Dispatch
module Obs = Tdp_obs

let ty = Type_name.of_string
let at = Attr_name.of_string
let key = Method_def.Key.make

let section title = Fmt.pr "@.=== %s ===@." title
let row2 c1 c2 = Fmt.pr "  %-34s %s@." c1 c2
let row3 c1 c2 c3 = Fmt.pr "  %-26s %-28s %s@." c1 c2 c3
let row4 c1 c2 c3 c4 = Fmt.pr "  %-14s %-22s %-22s %s@." c1 c2 c3 c4
let verdict ok = if ok then "MATCH" else "** MISMATCH **"

let status_string = function
  | `Applicable -> "applicable"
  | `Not_applicable -> "not applicable"
  | `Unknown -> "unknown"

(* ------------------------------------------------------------------ *)
(* E1 / E2: Figure 1 -> Figure 2                                       *)
(* ------------------------------------------------------------------ *)

let describe_type h name =
  let def = Hierarchy.find h (ty name) in
  Fmt.str "{%s} / [%s]"
    (String.concat ","
       (List.map (fun a -> Attr_name.to_string (Attribute.name a)) (Type_def.attrs def)))
    (String.concat ","
       (List.map
          (fun (s, p) -> Fmt.str "%s@%d" (Type_name.to_string s) p)
          (Type_def.supers def)))

let table_e1_e2 () =
  section
    "E1: Fig. 1 method applicability under Π_{ssn,date_of_birth,pay_rate} Employee";
  let o = Fig1.project () in
  row4 "method" "paper" "measured" "verdict";
  List.iter
    (fun (gf, paper) ->
      let measured = status_string (Applicability.status o.analysis (key gf gf)) in
      row4 gf paper measured (verdict (String.equal paper measured)))
    [ ("age", "applicable");
      ("promote", "applicable");
      ("income", "not applicable");
      ("get_ssn", "applicable");
      ("get_name", "not applicable");
      ("get_date_of_birth", "applicable");
      ("get_pay_rate", "applicable");
      ("get_hrs_worked", "not applicable")
    ];
  section "E2: Fig. 2 refactored hierarchy";
  let h = Schema.hierarchy o.schema in
  row3 "type" "paper: local attrs / supers" "measured";
  List.iter
    (fun (name, paper) ->
      let measured = describe_type h name in
      row3 name paper
        (Fmt.str "%-28s %s" measured (verdict (String.equal paper measured))))
    [ ("Person_hat", "{ssn,date_of_birth} / []");
      ("Person", "{name} / [Person_hat@0]");
      ("Employee_hat", "{pay_rate} / [Person_hat@1]");
      ("Employee", "{hrs_worked} / [Employee_hat@0,Person@1]")
    ]

(* ------------------------------------------------------------------ *)
(* E3: Examples 1 and 2                                                *)
(* ------------------------------------------------------------------ *)

let table_e3 () =
  section "E3: Fig. 3 / Example 2 classification under Π_{a2,e2,h2} A";
  let o = Fig3.project () in
  row4 "method" "paper" "measured" "verdict";
  let all =
    List.map (fun (g, i) -> (g, i, "applicable")) Fig3.expected_applicable
    @ List.map (fun (g, i) -> (g, i, "not applicable")) Fig3.expected_not_applicable
  in
  List.iter
    (fun (gf, id, paper) ->
      let measured = status_string (Applicability.status o.analysis (key gf id)) in
      row4 id paper measured (verdict (String.equal paper measured)))
    (List.sort compare all);
  row2 "driver passes"
    (Fmt.str "%d (paper: y1 is retracted and re-checked => >1)" o.analysis.passes)

(* ------------------------------------------------------------------ *)
(* E4: Figure 4                                                        *)
(* ------------------------------------------------------------------ *)

let fig4_expected =
  [ ("A_hat", "{a2} / [C_hat@1,B_hat@2]");
    ("A", "{a1} / [A_hat@0,C@1,B@2]");
    ("B_hat", "{} / [E_hat@2]");
    ("B", "{b1} / [B_hat@0,D@1,E@2]");
    ("C_hat", "{} / [F_hat@1,E_hat@2]");
    ("C", "{c1} / [C_hat@0,F@1,E@2]");
    ("D", "{d1} / []");
    ("E_hat", "{e2} / [H_hat@2]");
    ("E", "{e1} / [E_hat@0,G@1,H@2]");
    ("F_hat", "{} / [H_hat@1]");
    ("F", "{f1} / [F_hat@0,H@1]");
    ("G", "{g1} / []");
    ("H_hat", "{h2} / []");
    ("H", "{h1} / [H_hat@0]")
  ]

let table_e4 () =
  section "E4: Fig. 4 factored hierarchy (Section 5.2 trace)";
  let o = Fig3.project () in
  let h = Schema.hierarchy o.schema in
  row3 "type" "paper" "measured";
  List.iter
    (fun (name, paper) ->
      let measured = describe_type h name in
      row3 name paper
        (Fmt.str "%-28s %s" measured (verdict (String.equal paper measured))))
    fig4_expected

(* ------------------------------------------------------------------ *)
(* E5: Example 3                                                       *)
(* ------------------------------------------------------------------ *)

let table_e5 () =
  section "E5: Example 3 rewritten signatures (FactorMethods)";
  let o = Fig3.project () in
  row4 "method" "paper" "measured" "verdict";
  List.iter
    (fun (gf, id, paper) ->
      let m = Schema.find_method o.schema (key gf id) in
      let measured =
        Fmt.str "(%s)"
          (String.concat ","
             (List.map Type_name.to_string
                (Signature.param_types (Method_def.signature m))))
      in
      row4 id paper measured (verdict (String.equal paper measured)))
    [ ("v", "v1", "(A_hat,C_hat)");
      ("u", "u3", "(B_hat)");
      ("w", "w2", "(C_hat)");
      ("get_h2", "get_h2", "(B_hat)")
    ]

(* ------------------------------------------------------------------ *)
(* E6: Figure 5 / Example 4                                            *)
(* ------------------------------------------------------------------ *)

let table_e6 () =
  section "E6: Fig. 5 augmented hierarchy (Z from def-use analysis)";
  let o = Fig3.project ~schema:Fig3.schema_with_z () in
  let z =
    String.concat "," (List.map Type_name.to_string (Type_name.Set.elements o.z))
  in
  row4 "quantity" "paper" "measured" "verdict";
  row4 "Z" "D,G" z (verdict (String.equal z "D,G"));
  let h = Schema.hierarchy o.schema in
  List.iter
    (fun (name, paper) ->
      let measured = describe_type h name in
      row4 name paper measured (verdict (String.equal paper measured)))
    [ ("D_hat", "{} / []");
      ("G_hat", "{} / []");
      ("D", "{d1} / [D_hat@0]");
      ("G", "{g1} / [G_hat@0]");
      ("B_hat", "{} / [D_hat@1,E_hat@2]");
      ("E_hat", "{e2} / [G_hat@1,H_hat@2]")
    ]

(* ------------------------------------------------------------------ *)
(* E7: preservation claims over random schemas                         *)
(* ------------------------------------------------------------------ *)

let table_e7 () =
  section "E7: invariant checks over 100 random schemas (Tdp_synth)";
  let cases = 100 in
  let violations = ref 0 and ran = ref 0 in
  for seed = 0 to cases - 1 do
    let cfg =
      { Synth.default with
        n_types = 4 + (seed mod 12);
        max_supers = 1 + (seed mod 3);
        n_gfs = 2 + (seed mod 4);
        seed
      }
    in
    let schema = Synth.generate cfg in
    let source, projection = Synth.gen_projection ~seed schema in
    incr ran;
    match
      Projection.project_exn schema ~view:(Fmt.str "v%d" seed) ~source ~projection ()
    with
    | (_ : Projection.outcome) -> ()
    | exception Error.E e ->
        incr violations;
        Fmt.pr "  seed %d: %a@." seed Error.pp e
  done;
  row4 "property" "paper claim" "measured" "verdict";
  row4 "all invariants"
    (Fmt.str "0 violations / %d" cases)
    (Fmt.str "%d violations / %d" !violations !ran)
    (verdict (!violations = 0))

(* ------------------------------------------------------------------ *)
(* Synthetic hierarchies for the scaling experiments                   *)
(* ------------------------------------------------------------------ *)

(* A linear chain T(d-1) ⪯ … ⪯ T0, one attribute per type. *)
let chain_schema d =
  let rec go schema i =
    if i = d then schema
    else
      let supers = if i = 0 then [] else [ (ty (Fmt.str "T%d" (i - 1)), 1) ] in
      go
        (Schema.add_type schema
           (Type_def.make
              ~attrs:[ Attribute.make (at (Fmt.str "x%d" i)) Value_type.int ]
              ~supers (ty (Fmt.str "T%d" i))))
        (i + 1)
  in
  go Schema.empty 0

let chain_projection d =
  (ty (Fmt.str "T%d" (d - 1)), List.init d (fun i -> at (Fmt.str "x%d" i)))

(* A star: source with w direct supertypes, one attribute each. *)
let star_schema w =
  let schema =
    List.fold_left
      (fun schema i ->
        Schema.add_type schema
          (Type_def.make
             ~attrs:[ Attribute.make (at (Fmt.str "s%d" i)) Value_type.int ]
             (ty (Fmt.str "S%d" i))))
      Schema.empty
      (List.init w (fun i -> i))
  in
  Schema.add_type schema
    (Type_def.make
       ~attrs:[ Attribute.make (at "own") Value_type.int ]
       ~supers:(List.init w (fun i -> (ty (Fmt.str "S%d" i), i + 1)))
       (ty "Src"))

let star_projection w = (ty "Src", List.init w (fun i -> at (Fmt.str "s%d" i)))

let synth_for_methods m =
  Synth.generate
    { Synth.default with
      n_types = 16;
      n_gfs = max 1 (m / 5);
      methods_per_gf = 5;
      calls_per_body = 3;
      seed = 11
    }

(* Wall-clock timing for the sweep tables; bechamel covers the precise
   single points. *)
let time_it f =
  let reps = ref 1 in
  let rec go () =
    let t0 = Sys.time () in
    for _ = 1 to !reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.02 && !reps < 1_000_000 then begin
      reps := !reps * 4;
      go ()
    end
    else dt /. float_of_int !reps
  in
  go ()

let pp_time ppf s =
  if s < 1e-6 then Fmt.pf ppf "%8.1f ns" (s *. 1e9)
  else if s < 1e-3 then Fmt.pf ppf "%8.2f us" (s *. 1e6)
  else Fmt.pf ppf "%8.3f ms" (s *. 1e3)

let table_s1 () =
  section "S1: IsApplicable scaling vs. number of methods (16 types, recursion on)";
  row3 "methods" "analysis time" "time / method";
  List.iter
    (fun m ->
      let schema = synth_for_methods m in
      let n_methods = List.length (Schema.all_methods schema) in
      let source, projection = Synth.gen_projection ~seed:1 schema in
      let t =
        time_it (fun () -> Applicability.analyze_exn schema ~source ~projection)
      in
      row3 (string_of_int n_methods)
        (Fmt.str "%a" pp_time t)
        (Fmt.str "%a" pp_time (t /. float_of_int n_methods)))
    [ 10; 20; 40; 80; 160; 320 ]

let table_s2 () =
  section "S2: FactorState scaling vs. hierarchy depth (chain) and width (star)";
  row3 "shape" "types factored" "time";
  List.iter
    (fun d ->
      let schema = chain_schema d in
      let source, projection = chain_projection d in
      let t =
        time_it (fun () ->
            Factor_state.run_exn (Schema.hierarchy schema) ~view:"s2" ~source
              ~projection ())
      in
      row3 (Fmt.str "chain depth %d" d) (string_of_int d) (Fmt.str "%a" pp_time t))
    [ 4; 8; 16; 32; 64; 128 ];
  List.iter
    (fun w ->
      let schema = star_schema w in
      let source, projection = star_projection w in
      let t =
        time_it (fun () ->
            Factor_state.run_exn (Schema.hierarchy schema) ~view:"s2" ~source
              ~projection ())
      in
      row3
        (Fmt.str "star width %d" w)
        (string_of_int (w + 1))
        (Fmt.str "%a" pp_time t))
    [ 4; 8; 16; 32; 64; 128 ]

let table_s3 () =
  section "S3: dispatch cost before vs. after refactoring (transparency)";
  let before = Fig3.schema in
  let o = Fig3.project () in
  let d_before = Dispatch.create before in
  let d_after = Dispatch.create o.schema in
  row3 "call" "original hierarchy" "refactored hierarchy";
  List.iter
    (fun (gf, args) ->
      let tb = time_it (fun () -> Dispatch.most_specific d_before ~gf ~arg_types:args) in
      let ta = time_it (fun () -> Dispatch.most_specific d_after ~gf ~arg_types:args) in
      row3
        (Fmt.str "%s(%s)" gf (String.concat "," (List.map Type_name.to_string args)))
        (Fmt.str "%a" pp_time tb)
        (Fmt.str "%a" pp_time ta))
    [ ("u", [ ty "A" ]); ("v", [ ty "A"; ty "C" ]); ("x", [ ty "A"; ty "B" ]) ];
  row2 "view-type dispatch u(A_hat)"
    (Fmt.str "%a"
       (fun ppf () ->
         pp_time ppf
           (time_it (fun () ->
                Dispatch.most_specific d_after ~gf:"u" ~arg_types:[ ty "A_hat" ])))
       ())

let chained k =
  let rec go schema source i protect =
    if i = k then (schema, protect)
    else
      let name = ty (Fmt.str "W%d" i) in
      let o =
        Projection.project_exn ~check:false schema ~view:(Fmt.str "w%d" i)
          ~derived_name:name ~source
          ~projection:[ at "a2"; at "e2"; at "h2" ]
          ()
      in
      go o.schema name (i + 1) (Type_name.Set.add name protect)
  in
  go Fig3.schema (ty "A") 0 Type_name.Set.empty

let table_s4 () =
  section "S4: views-over-views surrogate growth and collapse (Section 7)";
  row4 "chain length" "types total" "empty surrogates" "after collapse";
  List.iter
    (fun k ->
      let schema, protect = chained k in
      let empty = Tdp_algebra.Optimize.empty_surrogate_count schema in
      let collapsed, removed = Tdp_algebra.Optimize.collapse_exn ~protect schema in
      row4 (string_of_int k)
        (string_of_int (Hierarchy.cardinal (Schema.hierarchy schema)))
        (string_of_int empty)
        (Fmt.str "%d (removed %d)"
           (Tdp_algebra.Optimize.empty_surrogate_count collapsed)
           (List.length removed)))
    [ 1; 2; 4; 8 ]

let table_s5 () =
  section "S5: ablation — cost of the invariant checks in the pipeline";
  row3 "workload" "project (no checks)" "project (all checks)";
  List.iter
    (fun (name, schema, source, projection) ->
      let run check () =
        Projection.project_exn ~check schema
          ~view:(Fmt.str "s5%s" name)
          ~source ~projection ()
      in
      row3 name
        (Fmt.str "%a" pp_time (time_it (run false)))
        (Fmt.str "%a" pp_time (time_it (run true))))
    [ ("fig1", Fig1.schema, ty "Employee", Fig1.projection);
      ("fig3+z", Fig3.schema_with_z, ty "A", Fig3.projection);
      ( "synth-160",
        synth_for_methods 160,
        fst (Synth.gen_projection ~seed:1 (synth_for_methods 160)),
        snd (Synth.gen_projection ~seed:1 (synth_for_methods 160)) )
    ]

let table_s6 () =
  section "S6: object-store operation throughput (100 objects, fig1 schema + view)";
  let o = Fig1.project () in
  let db = Tdp_store.Database.create o.schema in
  let oids =
    List.map
      (fun i ->
        Tdp_store.Database.new_object db (ty "Employee")
          ~init:
            [ (at "ssn", Tdp_store.Value.Int i);
              (at "date_of_birth", Tdp_store.Value.Date (1950 + (i mod 60)));
              (at "pay_rate", Tdp_store.Value.Float 10.0);
              (at "hrs_worked", Tdp_store.Value.Float 40.0)
            ])
      (List.init 100 (fun i -> i))
  in
  let interp = Tdp_store.Interp.create db in
  let some = List.nth oids 50 in
  row3 "operation" "time" "";
  List.iter
    (fun (name, f) -> row3 name (Fmt.str "%a" pp_time (time_it f)) "")
    [ ("get_attr", fun () -> ignore (Tdp_store.Database.get_attr db some (at "ssn")));
      ( "set_attr",
        fun () ->
          Tdp_store.Database.set_attr db some (at "pay_rate")
            (Tdp_store.Value.Float 11.0) );
      ( "interpreted accessor call",
        fun () -> ignore (Tdp_store.Interp.call_on interp "get_ssn" [ some ]) );
      ( "interpreted method (age)",
        fun () -> ignore (Tdp_store.Interp.call_on interp "age" [ some ]) );
      ( "extent of view type",
        fun () -> ignore (Tdp_store.Database.extent db (ty "Employee_hat")) )
    ]

(* The tie harness for S7: a source type A {x, y} and, per index i, a
   chain Cᵢ ⪯ Dᵢ with two methods of the generic function mᵢ that tie
   on position 0:

     mᵢ_app(A, Cᵢ) reading x   — applicable to Π_{x} A, relocated
     mᵢ_na (A, Dᵢ) reading y   — not applicable, kept

   Before the projection, the call mᵢ(A, Cᵢ) selects mᵢ_app (position
   1 decides).  After it, a naive ranking lets mᵢ_na win position 0
   (A before Â), flipping dispatch for original objects — unless the
   dispatcher gives Â the rank of A (surrogate transparency). *)
let tie_schema k =
  let attr n = Attribute.make (at n) Value_type.int in
  let s =
    Schema.empty
    |> fun s ->
    Schema.add_type s (Type_def.make ~attrs:[ attr "x"; attr "y" ] (ty "A"))
    |> fun s ->
    Schema.add_method s
      (Method_def.reader ~gf:"get_x" ~id:"get_x" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "x") ~result:Value_type.int)
    |> fun s ->
    Schema.add_method s
      (Method_def.reader ~gf:"get_y" ~id:"get_y" ~param:"self" ~param_type:(ty "A")
         ~attr:(at "y") ~result:Value_type.int)
  in
  let rec add s i =
    if i = k then s
    else
      let di = Fmt.str "D%d" i and ci = Fmt.str "C%d" i in
      let s = Schema.add_type s (Type_def.make (ty di)) in
      let s = Schema.add_type s (Type_def.make ~supers:[ (ty di, 1) ] (ty ci)) in
      let s =
        Schema.add_method s
          (Method_def.make ~gf:(Fmt.str "m%d" i) ~id:(Fmt.str "m%d_app" i)
             ~signature:(Signature.make [ ("a", ty "A"); ("c", ty ci) ])
             (General [ Body.expr (Body.call "get_x" [ Body.var "a" ]) ]))
      in
      let s =
        Schema.add_method s
          (Method_def.make ~gf:(Fmt.str "m%d" i) ~id:(Fmt.str "m%d_na" i)
             ~signature:(Signature.make [ ("a", ty "A"); ("d", ty di) ])
             (General [ Body.expr (Body.call "get_y" [ Body.var "a" ]) ]))
      in
      add s (i + 1)
  in
  add s 0

let table_s7 () =
  section
    "S7: ablation — dispatch flips without surrogate-transparent ranking (tie \
     harness)";
  row4 "tied method pairs" "flips (naive ranking)" "flips (transparent)" "verdict";
  List.iter
    (fun k ->
      let schema = tie_schema k in
      let o =
        Projection.project_exn ~check:false schema ~view:"s7" ~source:(ty "A")
          ~projection:[ at "x" ] ()
      in
      let count transparent =
        let d =
          Dispatch.create ~surrogate_transparent:transparent o.schema
        in
        let d0 = Dispatch.create o.before in
        List.length
          (List.filter
             (fun i ->
               let gf = Fmt.str "m%d" i in
               let args = [ ty "A"; ty (Fmt.str "C%d" i) ] in
               let pick d =
                 Option.map Method_def.key (Dispatch.most_specific d ~gf ~arg_types:args)
               in
               not (Option.equal Method_def.Key.equal (pick d0) (pick d)))
             (List.init k (fun i -> i)))
      in
      let naive = count false and transparent = count true in
      row4 (string_of_int k) (string_of_int naive) (string_of_int transparent)
        (verdict (naive = k && transparent = 0)))
    [ 1; 5; 10; 25; 50 ]

(* ------------------------------------------------------------------ *)
(* S8: durable-store recovery throughput                               *)
(* ------------------------------------------------------------------ *)

(* [store_fixture n] builds a database of [n] Employee objects over the
   fig1 schema and returns, alongside the schema, the two on-disk images
   recovery consumes: the snapshot text (Dump grammar) and the WAL image
   journaling mode would have produced for the same creations. *)
let store_fixture n =
  let o = Fig1.project () in
  let db = Tdp_store.Database.create o.schema in
  let buf = Buffer.create (n * 64) in
  let seq = ref 0 in
  Tdp_store.Database.set_journal db
    (Some
       (fun op ->
         incr seq;
         Buffer.add_string buf (Tdp_store.Wal.encode ~seq:!seq op)));
  List.iter
    (fun i ->
      ignore
        (Tdp_store.Database.new_object db (ty "Employee")
           ~init:
             [ (at "ssn", Tdp_store.Value.Int i);
               (at "date_of_birth", Tdp_store.Value.Date (1950 + (i mod 60)));
               (at "pay_rate", Tdp_store.Value.Float (10.0 +. float_of_int (i mod 7)));
               (at "hrs_worked", Tdp_store.Value.Float 40.0)
             ]))
    (List.init n (fun i -> i));
  Tdp_store.Database.set_journal db None;
  (o.schema, Tdp_store.Dump.to_string db, Buffer.contents buf)

let bench_snapshot_load schema snapshot () =
  Tdp_store.Dump.load_into (Tdp_store.Database.create schema) snapshot

let bench_wal_replay schema wal () =
  Tdp_store.Wal.recover_text ~schema ~wal ()

let table_s8 () =
  section "S8: durable-store recovery throughput (snapshot load vs. WAL replay)";
  row3 "objects" "snapshot load" "wal replay";
  List.iter
    (fun n ->
      let schema, snapshot, wal = store_fixture n in
      let t_snap = time_it (bench_snapshot_load schema snapshot) in
      let t_wal = time_it (bench_wal_replay schema wal) in
      let rate t = Fmt.str "%a  (%7.0f objs/s)" pp_time t (float_of_int n /. t) in
      row3 (string_of_int n) (rate t_snap) (rate t_wal))
    [ 100; 1000 ]

(* ------------------------------------------------------------------ *)
(* S9: MVCC commit throughput (in-memory store, fig1 schema)           *)
(* ------------------------------------------------------------------ *)

module Mvcc = Tdp_txn.Mvcc

(* An in-memory MVCC store pre-populated with [n] Employee objects, so
   concurrent writers can update disjoint rows without conflicting. *)
let mvcc_fixture n =
  let o = Fig1.project () in
  let store = Mvcc.create o.schema in
  let t = Mvcc.begin_ store in
  let oids =
    List.map
      (fun i ->
        Mvcc.new_object t (ty "Employee")
          ~init:
            [ (at "ssn", Tdp_store.Value.Int i);
              (at "date_of_birth", Tdp_store.Value.Date (1950 + (i mod 60)));
              (at "pay_rate", Tdp_store.Value.Float 10.0);
              (at "hrs_worked", Tdp_store.Value.Float 40.0)
            ])
      (List.init n (fun i -> i))
  in
  (match Mvcc.commit t with
  | Ok _ -> ()
  | Error e -> failwith (Mvcc.commit_error_message e));
  (store, Array.of_list oids)

(* One update transaction against row [oid]; [false] means the commit
   lost a first-writer-wins race. *)
let commit_once store oid v =
  let t = Mvcc.begin_ store in
  Mvcc.set_attr t oid (at "pay_rate") (Tdp_store.Value.Float v);
  match Mvcc.commit t with Ok _ -> true | Error _ -> false

(* Wall-clock throughput of [workers] domains each committing
   [per_worker] transactions on disjoint rows.  Uses gettimeofday, not
   Sys.time: CPU time sums across domains and would hide the
   parallelism this measures. *)
let concurrent_commits store oids ~workers ~per_worker =
  let conflicts = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker w () =
    let oid = oids.(w) in
    for k = 1 to per_worker do
      if not (commit_once store oid (float_of_int k)) then Atomic.incr conflicts
    done
  in
  let ds = List.init workers (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int (workers * per_worker) /. dt, Atomic.get conflicts)

let table_s9 () =
  section "S9: MVCC commit throughput (in-memory store, disjoint rows)";
  let store, oids = mvcc_fixture 64 in
  let t_serial = time_it (fun () -> ignore (commit_once store oids.(0) 11.0)) in
  row3 "serial commit"
    (Fmt.str "%a" pp_time t_serial)
    (Fmt.str "(%7.0f txn/s)" (1.0 /. t_serial));
  row3 "writer domains" "throughput" "conflicts";
  List.iter
    (fun w ->
      let rate, conflicts = concurrent_commits store oids ~workers:w ~per_worker:200 in
      row3 (string_of_int w) (Fmt.str "%7.0f txn/s" rate) (string_of_int conflicts))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Schema-index scaling sweep: layered diamond lattices                *)
(* ------------------------------------------------------------------ *)

(* A layered multiple-inheritance lattice: [width] types per layer,
   every type above the first layer inheriting from two types of the
   previous layer (wrapping), so deep diamonds dominate and ancestor
   sets grow to a constant fraction of the hierarchy.  This is the
   worst case for the per-query ancestor-set construction the compiled
   index replaces, and the shape the closure bitset has to absorb. *)
let diamond_hierarchy ?(width = 10) n =
  let name i = ty (Fmt.str "N%d" i) in
  let rec go h i =
    if i >= n then h
    else
      let supers =
        if i < width then []
        else
          let p = i mod width and base = ((i / width) - 1) * width in
          [ (name (base + p), 1); (name (base + ((p + 1) mod width)), 2) ]
      in
      go (Hierarchy.add h (Type_def.make ~supers (name i))) (i + 1)
  in
  go Hierarchy.empty 0

(* Deterministic query mix (an LCG, so every run and both sides of a
   comparison measure the same pairs). *)
let query_pairs n k =
  let state = ref 1 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  List.init k (fun _ ->
      let a = next () mod n in
      let b = next () mod n in
      (a, b))

let ns t = t *. 1e9

type sweep_point = {
  sw_n : int;
  sw_build_ns : float;  (* one Schema_index.compile *)
  sw_index_ns : float;  (* one subtype query, compiled index *)
  sw_cached_set_ns : float;  (* one query via memoized ancestor sets *)
  sw_set_ns : float;  (* one query via per-query Hierarchy.subtype *)
}

let sweep_queries = 512

let sweep_point n =
  let h = diamond_hierarchy n in
  let idx = Schema_index.compile h in
  let queries =
    List.map
      (fun (a, b) -> (Schema_index.name idx a, Schema_index.name idx b))
      (query_pairs n sweep_queries)
  in
  let per_query t = ns t /. float_of_int sweep_queries in
  let t_build = time_it (fun () -> Schema_index.compile h) in
  let t_index =
    time_it (fun () ->
        List.iter (fun (a, b) -> ignore (Schema_index.subtype idx a b)) queries)
  in
  (* the pre-index cached-set strategy: memoize one Type_name.Set of
     ancestors per queried type, then test membership *)
  let t_cached_set =
    time_it (fun () ->
        List.iter
          (fun (a, b) ->
            ignore (Type_name.Set.mem b (Schema_index.ancestor_set idx a)))
          queries)
  in
  (* the uncached strategy the acceptance criterion bans from hot
     paths: build the ancestor set afresh on every query *)
  let t_set =
    time_it (fun () ->
        List.iter (fun (a, b) -> ignore (Hierarchy.subtype h a b)) queries)
  in
  { sw_n = n;
    sw_build_ns = ns t_build;
    sw_index_ns = per_query t_index;
    sw_cached_set_ns = per_query t_cached_set;
    sw_set_ns = per_query t_set
  }

let sweep_sizes ~small = if small then [ 100; 400 ] else [ 100; 1000; 5000 ]

(* ------------------------------------------------------------------ *)
(* S10: columnar extent engine vs. the map-backed store it replaced    *)
(* ------------------------------------------------------------------ *)

(* The pre-columnar store kept one attribute map per object in a single
   object table and answered extents by scanning the whole table.
   [Mapstore] transcribes that representation so the sweep measures the
   struct-of-arrays layout against the design it replaced, on identical
   data.  Its predicate path is even cheaper than the old generic
   [Pred.eval] (a hand-specialized closure over the slot map), so the
   measured speedups are conservative. *)
module Mapstore = struct
  type obj = { mo_ty : Type_name.t; mo_slots : Tdp_store.Value.t Attr_name.Map.t }

  type t = {
    ms_index : Schema_index.t;
    ms_objects : (int, obj) Hashtbl.t;
    mutable ms_next : int;
  }

  let create schema n =
    { ms_index = Schema_index.compile (Schema.hierarchy schema);
      ms_objects = Hashtbl.create (max 16 n);
      ms_next = 1
    }

  let insert t ty_ init =
    let slots =
      List.fold_left
        (fun m (a, v) -> Attr_name.Map.add a v m)
        Attr_name.Map.empty init
    in
    let oid = t.ms_next in
    t.ms_next <- oid + 1;
    Hashtbl.replace t.ms_objects oid { mo_ty = ty_; mo_slots = slots }

  (* the old [Database.extent]: descendant set, whole-table scan, sort *)
  let extent t nm =
    let desc =
      Type_name.Set.of_list (Schema_index.descendants_or_self t.ms_index nm)
    in
    List.sort compare
      (Hashtbl.fold
         (fun oid o acc ->
           if Type_name.Set.mem o.mo_ty desc then oid :: acc else acc)
         t.ms_objects [])

  (* the old per-row predicate path: extent, then slot-map lookups *)
  let scan t nm pred =
    List.filter
      (fun oid -> pred (Hashtbl.find t.ms_objects oid).mo_slots)
      (extent t nm)
end

let employee_init i =
  [ (at "ssn", Tdp_store.Value.Int i);
    (at "date_of_birth", Tdp_store.Value.Date (1950 + (i mod 60)));
    (at "pay_rate", Tdp_store.Value.Float (10.0 +. float_of_int (i mod 7)));
    (at "hrs_worked", Tdp_store.Value.Float 40.0)
  ]

let columnar_fixture n =
  let o = Fig1.project () in
  let db = Tdp_store.Database.create o.schema in
  Tdp_store.Database.reserve db n;
  for i = 0 to n - 1 do
    ignore (Tdp_store.Database.new_object db (ty "Employee") ~init:(employee_init i))
  done;
  (o.schema, db)

let mapstore_fixture schema n =
  let ms = Mapstore.create schema n in
  for i = 0 to n - 1 do
    Mapstore.insert ms (ty "Employee") (employee_init i)
  done;
  ms

(* ~4/7 selective conjunction over two unboxed float columns *)
let sweep_pred =
  Tdp_algebra.Pred.(
    And
      ( Cmp { attr = at "pay_rate"; op = Ge; value = Body.Float 13.0 },
        Cmp { attr = at "hrs_worked"; op = Eq; value = Body.Float 40.0 } ))

(* the same predicate, hand-specialized for the map-backed side *)
let sweep_pred_map slots =
  (match Attr_name.Map.find_opt (at "pay_rate") slots with
  | Some (Tdp_store.Value.Float v) -> v >= 13.0
  | _ -> false)
  && (match Attr_name.Map.find_opt (at "hrs_worked") slots with
     | Some (Tdp_store.Value.Float v) -> Float.equal v 40.0
     | _ -> false)

type col_point = {
  cp_n : int;
  cp_extent_ns : float;  (* columnar deep extent of Person, one call *)
  cp_extent_map_ns : float;
  cp_scan_ns : float;  (* compiled predicate scan over Employee, one call *)
  cp_scan_map_ns : float;
  cp_mv_steady_ns : float;  (* matview refresh, all rows clean *)
  cp_mv_force_ns : float;  (* matview refresh, stamp skipping disabled *)
}

let columnar_point n =
  let person = ty "Person" and employee = ty "Employee" in
  (* Each design is measured against its own heap: the boxed slot maps
     of the map-backed mirror tax every allocation made while they are
     live (major-GC marking debt is proportional to the live heap), and
     that debt belongs to the map design, not to whoever happens to
     allocate next.  So: columnar side first, then the mirror, with a
     full collection at each hand-off. *)
  let schema, db = columnar_fixture n in
  Gc.full_major ();
  let t_extent = time_it (fun () -> Tdp_store.Database.extent db person) in
  let t_scan = time_it (fun () -> Tdp_algebra.Pred.scan db employee sweep_pred) in
  let t_extent_map, t_scan_map =
    let ms = mapstore_fixture schema n in
    Gc.full_major ();
    let t_extent_map = time_it (fun () -> Mapstore.extent ms person) in
    let t_scan_map = time_it (fun () -> Mapstore.scan ms employee sweep_pred_map) in
    (t_extent_map, t_scan_map)
  in
  (* view maintenance over the same rows: Employee_hat copies of every
     Employee.  The steady refresh sees only clean row stamps; [force]
     re-diffs every pair, which is what every refresh cost before dirty
     tracking.  Measured last — the copies would pollute the extents
     (the mirror is unreachable by now; collect it). *)
  Gc.full_major ();
  let mv =
    Tdp_algebra.Matview.create db ~view_type:(ty "Employee_hat")
      (Tdp_algebra.View.Project (Tdp_algebra.View.Base employee, Fig1.projection))
  in
  let t_steady = time_it (fun () -> Tdp_algebra.Matview.refresh db mv) in
  let t_force = time_it (fun () -> Tdp_algebra.Matview.refresh ~force:true db mv) in
  { cp_n = n;
    cp_extent_ns = ns t_extent;
    cp_extent_map_ns = ns t_extent_map;
    cp_scan_ns = ns t_scan;
    cp_scan_map_ns = ns t_scan_map;
    cp_mv_steady_ns = ns t_steady;
    cp_mv_force_ns = ns t_force
  }

(* 100k is in every mode: the acceptance floors are keyed on it. *)
let columnar_sizes ~small =
  if small then [ 1_000; 100_000 ] else [ 1_000; 100_000; 1_000_000 ]

let table_s10 () =
  section "S10: columnar extents vs. map-backed store (fig1 Employees)";
  row4 "objects" "extent col | map" "pred-scan col | map" "matview steady | force";
  let pair a b =
    Fmt.str "%a |%a (%5.1fx)" pp_time (a /. 1e9) pp_time (b /. 1e9) (b /. a)
  in
  List.iter
    (fun n ->
      let p = columnar_point n in
      row4 (string_of_int n)
        (pair p.cp_extent_ns p.cp_extent_map_ns)
        (pair p.cp_scan_ns p.cp_scan_map_ns)
        (pair p.cp_mv_steady_ns p.cp_mv_force_ns))
    [ 1_000; 100_000 ]

(* ------------------------------------------------------------------ *)
(* S11: replica catch-up throughput and routed-extent fan-out          *)
(* ------------------------------------------------------------------ *)

module Replica = Tdp_replica.Replica
module Router = Tdp_replica.Router
module Server = Tdp_txn.Server

(* A scratch directory that is removed with everything in it. *)
let with_bench_dir f =
  let dir = Filename.temp_file "tdp_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

type rep_point = {
  rp_n : int;
  rp_ship_ns : float;  (* open + drain the whole log, per record *)
  rp_idle_ns : float;  (* one caught-up poll: the steady-state heartbeat *)
}

(* The shipping workload: a primary directory whose wal.log holds [n]
   creations, drained by a fresh replica.  Per-record cost is the
   replica's catch-up rate — the bound on how fast lag burns down. *)
let replica_point n =
  with_bench_dir (fun dir ->
      let schema, _snapshot, wal = store_fixture n in
      Out_channel.with_open_bin (Filename.concat dir "wal.log") (fun oc ->
          Out_channel.output_string oc wal);
      let t_ship =
        time_it (fun () ->
            let r = Replica.open_ ~schema dir in
            let shipped = Replica.poll r in
            Replica.close r;
            assert (shipped = n))
      in
      let r = Replica.open_ ~schema dir in
      ignore (Replica.poll r);
      let t_idle = time_it (fun () -> Replica.poll r) in
      Replica.close r;
      { rp_n = n;
        rp_ship_ns = ns t_ship /. float_of_int n;
        rp_idle_ns = ns t_idle
      })

(* Two live shards behind the OID-range router, over Unix sockets.
   [router/extent] is one fanned-out deep extent, merged in global OID
   order; [direct] is the same extent against a single backend holding
   all the rows — the delta is what the fan-out and merge cost. *)
let router_point n =
  let shard lo hi =
    let db = Tdp_store.Database.create Fig1.schema in
    for i = lo to hi do
      Tdp_store.Wal.apply db
        (Tdp_store.Database.Op_new
           { oid = Tdp_store.Oid.of_int i;
             ty = ty "Employee";
             init = [ (at "ssn", Tdp_store.Value.Int i) ]
           })
    done;
    Mvcc.of_database db
  in
  let serve store =
    let path = Filename.temp_file "tdp_bshard" ".sock" in
    Sys.remove path;
    Server.start ~domains:2 ~store (Unix.ADDR_UNIX path)
  in
  let sock srv =
    match Server.sockaddr srv with Unix.ADDR_UNIX p -> p | _ -> assert false
  in
  let half = n / 2 in
  let s1 = serve (shard 1 half) in
  let s2 = serve (shard (half + 1) n) in
  let s_all = serve (shard 1 n) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop s1;
      Server.stop s2;
      Server.stop s_all)
    (fun () ->
      let router =
        match
          Router.make
            [ { Router.b_name = "s1";
                b_lo = 1;
                b_hi = half;
                b_addr = Unix.ADDR_UNIX (sock s1)
              };
              { Router.b_name = "s2";
                b_lo = half + 1;
                b_hi = max_int;
                b_addr = Unix.ADDR_UNIX (sock s2)
              }
            ]
        with
        | Ok r -> r
        | Error m -> failwith m
      in
      let rs = Router.session router in
      let direct = Server.connect (Unix.ADDR_UNIX (sock s_all)) in
      Fun.protect
        ~finally:(fun () ->
          Router.close_session rs;
          Server.close_client direct)
        (fun () ->
          let t_routed =
            time_it (fun () -> Router.handle_line rs "extent Person")
          in
          let t_direct = time_it (fun () -> Server.request direct "extent Person") in
          let t_get =
            time_it (fun () -> Router.handle_line rs (Fmt.str "get #%d ssn" n))
          in
          (t_routed, t_direct, t_get)))

(* The statement language's eval hot path (odb repl / server eval /
   Session API): [typecheck] is one non-scanning statement — parse
   once, then resolve + principal inference against the live schema;
   [extent] is one selecting extent statement over [n] Employees,
   reported per row.  Both run on a warm Session over a Database. *)
let session_point n =
  let db = Tdp_store.Database.create Fig1.schema in
  for i = 1 to n do
    Tdp_store.Wal.apply db
      (Tdp_store.Database.Op_new
         { oid = Tdp_store.Oid.of_int i;
           ty = ty "Employee";
           init =
             [ (at "ssn", Tdp_store.Value.Int i);
               (at "pay_rate", Tdp_store.Value.Float (float_of_int (i mod 200)))
             ]
         })
  done;
  let s = Tdp_lang.Session.of_database db in
  let stmt src =
    match Tdp_lang.Stmt.parse_string src with
    | [ st ] -> st
    | _ -> assert false
  in
  let type_stmt =
    stmt ":type select project Employee on [ssn, pay_rate] where pay_rate < 100.0"
  in
  let extent_stmt = stmt ":extent select Employee where pay_rate < 100.0" in
  let check o = assert (not (Tdp_lang.Session.failed o)) in
  check (Tdp_lang.Session.eval s type_stmt);
  check (Tdp_lang.Session.eval s extent_stmt);
  let t_type = time_it (fun () -> Tdp_lang.Session.eval s type_stmt) in
  let t_extent = time_it (fun () -> Tdp_lang.Session.eval s extent_stmt) in
  (t_type, t_extent)

let table_s11 () =
  section "S11: replica catch-up and routed extents (fig1 Employees)";
  row3 "shipped records" "catch-up per record" "idle poll";
  List.iter
    (fun n ->
      let p = replica_point n in
      row3 (string_of_int n)
        (Fmt.str "%a  (%7.0f rec/s)" pp_time (p.rp_ship_ns /. 1e9)
           (1e9 /. p.rp_ship_ns))
        (Fmt.str "%a" pp_time (p.rp_idle_ns /. 1e9)))
    [ 100; 1000 ];
  row3 "rows (2 shards)" "routed extent | direct" "routed get";
  List.iter
    (fun n ->
      let t_routed, t_direct, t_get = router_point n in
      row3 (string_of_int n)
        (Fmt.str "%a |%a (%4.1fx)" pp_time t_routed pp_time t_direct
           (t_routed /. t_direct))
        (Fmt.str "%a" pp_time t_get))
    [ 1000 ]

(* ------------------------------------------------------------------ *)
(* JSON baseline: cached vs. uncached hot paths (docs/performance.md)  *)
(* ------------------------------------------------------------------ *)

(* The report is the machine-readable perf trajectory of the repo: one
   BENCH_<pr>.json per PR that touches a hot path.  Keep the shape
   stable — field additions are fine, renames are not. *)

type entry = { name : string; ns_per_op : float }

type speedup = {
  s_name : string;
  uncached_ns : float;
  cached_ns : float;
  ops : int;  (* distinct operations per measured iteration *)
}

(* A dispatch workload: every method's own parameter tuple is a valid
   call of its generic function, giving a realistic mix of arities and
   candidate-set sizes over one schema.  Calls whose argument types
   have no consistent linearization (possible under random multiple
   inheritance) cannot be ranked and are skipped. *)
let dispatch_workload schema =
  let h = Schema.hierarchy schema in
  let linearizes t = match Linearize.cpl_result h t with Ok _ -> true | Error _ -> false in
  List.filter_map
    (fun m ->
      let tys = Signature.param_types (Method_def.signature m) in
      if List.for_all linearizes tys then Some (Method_def.gf m, tys) else None)
    (Schema.all_methods schema)

(* Many views of one schema, as `odb lint` and the S-tables issue them:
   k distinct projections of the same source type. *)
let multi_view_workload schema k =
  let source, all = Synth.gen_projection ~seed:1 schema in
  let n = List.length all in
  List.init k (fun i ->
      let proj =
        if i = 0 || n = 1 then all
        else List.filteri (fun j _ -> j <> i mod n) all
      in
      (source, proj))

(* Single inheritance keeps every type linearizable, so the whole
   method population is a usable dispatch workload. *)
let synth_linear m =
  Synth.generate
    { Synth.default with
      n_types = 16;
      max_supers = 1;
      n_gfs = max 1 (m / 5);
      methods_per_gf = 5;
      calls_per_body = 3;
      seed = 11
    }

let json_report ~small =
  (* guarded measurements run with the registry off — the gate verifies
     the instrumentation is free when disabled *)
  Obs.Metrics.disable ();
  let methods = if small then 40 else 160 in
  let n_views = if small then 4 else 12 in
  let schema = synth_linear methods in
  let calls = dispatch_workload schema in
  let n_calls = List.length calls in
  (* repeated dispatch: rank candidates per call vs. hit the table *)
  let d = Dispatch.create schema in
  let run_uncached () =
    List.iter
      (fun (gf, arg_types) -> ignore (Dispatch.applicable_uncached d ~gf ~arg_types))
      calls
  in
  let run_cached () =
    List.iter
      (fun (gf, arg_types) -> ignore (Dispatch.applicable d ~gf ~arg_types))
      calls
  in
  run_cached () (* steady state: table populated *)
  ;
  let t_disp_un = time_it run_uncached and t_disp_ca = time_it run_cached in
  (* multi-view applicability: fresh state per view vs. one shared batch *)
  let views = multi_view_workload schema n_views in
  let t_views_un =
    time_it (fun () ->
        List.map
          (fun (source, projection) ->
            Applicability.analyze_exn schema ~source ~projection)
          views)
  in
  let t_views_ca = time_it (fun () -> Applicability.analyze_all_exn schema ~views) in
  let source1, proj1 = List.hd views in
  let t_single =
    time_it (fun () -> Applicability.analyze_exn schema ~source:source1 ~projection:proj1)
  in
  (* pipeline inference: solve the same multi-view workload as one
     program, then check each principal against the schema *)
  let infer_program_of vs =
    List.map
      (fun (i, (source, projection)) ->
        (Fmt.str "v%d" i,
         Tdp_infer.Pipeline.Project (Tdp_infer.Pipeline.Source source, projection)))
      (List.mapi (fun i v -> (i, v)) vs)
  in
  let inf_prog = infer_program_of views in
  let t_infer = time_it (fun () -> ignore (Tdp_infer.Infer.infer_program inf_prog)) in
  let principals =
    List.filter_map
      (fun (_, r) -> Result.to_option r)
      (Tdp_infer.Infer.infer_program inf_prog)
  in
  let t_admit =
    time_it (fun () ->
        List.iter (fun p -> ignore (Tdp_infer.Infer.admits schema p)) principals)
  in
  let stats = Dispatch.stats d in
  (* durable-store recovery throughput: load one snapshot image /
     replay one WAL image, reported per object *)
  let store_n = if small then 200 else 1000 in
  let s_schema, s_snapshot, s_wal = store_fixture store_n in
  let t_snap = time_it (bench_snapshot_load s_schema s_snapshot) in
  let t_wal = time_it (bench_wal_replay s_schema s_wal) in
  let per_obj t = ns t /. float_of_int store_n in
  let objs_per_sec t = float_of_int store_n /. t in
  (* MVCC commit throughput: one serial committer, then 8 writer
     domains on disjoint rows (wall clock — see concurrent_commits) *)
  let txn_workers = 8 in
  let txn_per_worker = if small then 50 else 200 in
  let tstore, toids = mvcc_fixture 64 in
  let t_commit = time_it (fun () -> ignore (commit_once tstore toids.(0) 11.0)) in
  let txn_rate, txn_conflicts =
    concurrent_commits tstore toids ~workers:txn_workers ~per_worker:txn_per_worker
  in
  (* observability: cost of the disabled gates on the hot-path wrappers,
     cost of a live observation, and a registry snapshot taken from one
     instrumented pass over the same workloads *)
  let obs_h = Obs.Metrics.histogram "bench.probe_ns" in
  let t_time_off = time_it (fun () -> Obs.Metrics.time obs_h (fun () -> ())) in
  let t_span_off = time_it (fun () -> Obs.Trace.with_span "bench" (fun () -> ())) in
  Obs.Metrics.enable ();
  let t_observe_on = time_it (fun () -> Obs.Metrics.observe obs_h 100.) in
  Obs.Metrics.reset ();
  run_cached ();
  ignore (Applicability.analyze_exn schema ~source:source1 ~projection:proj1);
  List.iter
    (fun p -> ignore (Tdp_infer.Infer.admits schema p))
    (List.filter_map
       (fun (_, r) -> Result.to_option r)
       (Tdp_infer.Infer.infer_program inf_prog));
  ignore (bench_snapshot_load s_schema s_snapshot ());
  ignore (bench_wal_replay s_schema s_wal ());
  let metrics_snapshot = Obs.Metrics.snapshot () in
  Obs.Metrics.disable ();
  let sweep = List.map sweep_point (sweep_sizes ~small) in
  let cols = List.map columnar_point (columnar_sizes ~small) in
  (* replica catch-up and routed extents (S11): fixed at 1000 records
     in both modes so the entry names stay comparable across baselines *)
  let rep = replica_point 1_000 in
  let t_routed, t_direct, _ = router_point 1_000 in
  (* statement-language eval path, fixed at 1000 rows likewise *)
  let repl_n = 1_000 in
  let t_repl_type, t_repl_extent = session_point repl_n in
  (* the acceptance floors for the columnar engine are keyed on the
     100k point, which every mode measures *)
  let c100k = List.find (fun p -> p.cp_n = 100_000) cols in
  (* the smallest sweep point is measured in every mode, so its entries
     carry stable names the --check regression gate can key on *)
  let p0 = List.hd sweep in
  let largest = List.nth sweep (List.length sweep - 1) in
  let entries =
    [ { name = "dispatch/applicable/uncached"; ns_per_op = ns t_disp_un /. float_of_int n_calls };
      { name = "dispatch/applicable/cached"; ns_per_op = ns t_disp_ca /. float_of_int n_calls };
      { name = "applicability/analyze/single-view"; ns_per_op = ns t_single };
      { name = "applicability/analyze-all/per-view";
        ns_per_op = ns t_views_ca /. float_of_int n_views
      };
      { name = "subtype/index"; ns_per_op = p0.sw_index_ns };
      { name = "subtype/cached-set"; ns_per_op = p0.sw_cached_set_ns };
      { name = "subtype/set"; ns_per_op = p0.sw_set_ns };
      { name = "infer/pipeline"; ns_per_op = ns t_infer /. float_of_int n_views };
      { name = "infer/admits";
        ns_per_op = ns t_admit /. float_of_int (max 1 (List.length principals))
      };
      { name = "store/snapshot-load"; ns_per_op = per_obj t_snap };
      { name = "store/wal-replay"; ns_per_op = per_obj t_wal };
      { name = "txn/commit/serial"; ns_per_op = ns t_commit };
      { name = Fmt.str "txn/commit/concurrent-%d" txn_workers;
        ns_per_op = 1e9 /. txn_rate
      };
      { name = "obs/time/disabled"; ns_per_op = ns t_time_off };
      { name = "obs/with_span/disabled"; ns_per_op = ns t_span_off };
      { name = "obs/observe/enabled"; ns_per_op = ns t_observe_on };
      { name = "replica/lag"; ns_per_op = rep.rp_ship_ns };
      { name = "replica/poll-idle"; ns_per_op = rep.rp_idle_ns };
      { name = "router/extent"; ns_per_op = ns t_routed };
      { name = "router/extent/direct"; ns_per_op = ns t_direct };
      { name = "repl/eval/typecheck"; ns_per_op = ns t_repl_type };
      { name = "repl/eval/extent-row";
        ns_per_op = ns t_repl_extent /. float_of_int repl_n
      }
    ]
    @ List.concat_map
        (fun p ->
          [ { name = Fmt.str "index/build/n=%d" p.sw_n; ns_per_op = p.sw_build_ns };
            { name = Fmt.str "subtype/index/n=%d" p.sw_n; ns_per_op = p.sw_index_ns };
            { name = Fmt.str "subtype/cached-set/n=%d" p.sw_n;
              ns_per_op = p.sw_cached_set_ns
            };
            { name = Fmt.str "subtype/set/n=%d" p.sw_n; ns_per_op = p.sw_set_ns }
          ])
        sweep
    @ List.concat_map
        (fun p ->
          [ { name = Fmt.str "store/extent/columnar/n=%d" p.cp_n;
              ns_per_op = p.cp_extent_ns
            };
            { name = Fmt.str "store/extent/map/n=%d" p.cp_n;
              ns_per_op = p.cp_extent_map_ns
            };
            { name = Fmt.str "scan/pred/columnar/n=%d" p.cp_n;
              ns_per_op = p.cp_scan_ns
            };
            { name = Fmt.str "scan/pred/map/n=%d" p.cp_n;
              ns_per_op = p.cp_scan_map_ns
            };
            { name = Fmt.str "matview/refresh-steady/n=%d" p.cp_n;
              ns_per_op = p.cp_mv_steady_ns
            };
            { name = Fmt.str "matview/refresh-force/n=%d" p.cp_n;
              ns_per_op = p.cp_mv_force_ns
            }
          ])
        cols
  in
  let speedups =
    [ { s_name = "repeated-dispatch";
        uncached_ns = ns t_disp_un /. float_of_int n_calls;
        cached_ns = ns t_disp_ca /. float_of_int n_calls;
        ops = n_calls
      };
      { s_name = "multi-view-applicability";
        uncached_ns = ns t_views_un /. float_of_int n_views;
        cached_ns = ns t_views_ca /. float_of_int n_views;
        ops = n_views
      };
      { s_name = "subtype/index-vs-set";
        uncached_ns = largest.sw_set_ns;
        cached_ns = largest.sw_index_ns;
        ops = sweep_queries
      };
      { s_name = "subtype/index-vs-cached-set";
        uncached_ns = largest.sw_cached_set_ns;
        cached_ns = largest.sw_index_ns;
        ops = sweep_queries
      };
      (* columnar engine headline wins, measured at 100k rows; the
         first two carry the --check acceptance floors *)
      { s_name = "store/extent/columnar-vs-map";
        uncached_ns = c100k.cp_extent_map_ns;
        cached_ns = c100k.cp_extent_ns;
        ops = c100k.cp_n
      };
      { s_name = "scan/pred/columnar-vs-map";
        uncached_ns = c100k.cp_scan_map_ns;
        cached_ns = c100k.cp_scan_ns;
        ops = c100k.cp_n
      };
      { s_name = "matview/steady-vs-force";
        uncached_ns = c100k.cp_mv_force_ns;
        cached_ns = c100k.cp_mv_steady_ns;
        ops = c100k.cp_n
      }
    ]
  in
  let buf = Buffer.create 1024 in
  let f v = Fmt.str "%.1f" v in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf (Fmt.str "  \"suite\": \"tdp-bench\",\n");
  Buffer.add_string buf
    (Fmt.str
       "  \"config\": { \"small\": %b, \"methods\": %d, \"views\": %d, \
        \"sweep_sizes\": [%s], \"sweep_queries\": %d, \
        \"columnar_sizes\": [%s] },\n"
       small methods n_views
       (String.concat ", " (List.map string_of_int (sweep_sizes ~small)))
       sweep_queries
       (String.concat ", " (List.map string_of_int (columnar_sizes ~small))));
  Buffer.add_string buf
    (Fmt.str
       "  \"dispatch_table\": { \"entries\": %d, \"hits\": %d, \"misses\": %d },\n"
       stats.entries stats.hits stats.misses);
  Buffer.add_string buf
    (Fmt.str
       "  \"store\": { \"objects\": %d, \"snapshot_load_objs_per_sec\": %s, \
        \"wal_replay_objs_per_sec\": %s },\n"
       store_n
       (f (objs_per_sec t_snap))
       (f (objs_per_sec t_wal)));
  Buffer.add_string buf
    (Fmt.str
       "  \"txn\": { \"workers\": %d, \"commits\": %d, \"conflicts\": %d, \
        \"commits_per_sec\": %s },\n"
       txn_workers (txn_workers * txn_per_worker) txn_conflicts (f txn_rate));
  Buffer.add_string buf
    (Fmt.str "  \"metrics\": %s,\n"
       (Obs.Json.to_string (Obs.Metrics.to_json metrics_snapshot)));
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Fmt.str "    { \"name\": %S, \"ns_per_op\": %s }%s\n" e.name
           (f e.ns_per_op)
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"speedups\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Fmt.str
           "    { \"name\": %S, \"ops\": %d, \"uncached_ns_per_op\": %s, \
            \"cached_ns_per_op\": %s, \"speedup\": %s }%s\n"
           s.s_name s.ops (f s.uncached_ns) (f s.cached_ns)
           (f (s.uncached_ns /. s.cached_ns))
           (if i = List.length speedups - 1 then "" else ",")))
    speedups;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run_json ~small ~out =
  let report = json_report ~small in
  if out = "-" then print_string report
  else begin
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc report);
    Fmt.pr "wrote %s@." out
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per experiment                  *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bechamel_tests () =
  let fig1_schema = Fig1.schema in
  let fig3_schema = Fig3.schema in
  let fig3_projected = Fig3.project () in
  let d_after = Dispatch.create fig3_projected.schema in
  let synth160 = synth_for_methods 160 in
  let synth_src, synth_proj = Synth.gen_projection ~seed:1 synth160 in
  let chain32 = chain_schema 32 in
  let chain_src, chain_proj = chain_projection 32 in
  let collapse_input = chained 4 in
  Test.make_grouped ~name:"tdp"
    [ Test.make ~name:"E1-E2/pipeline-fig1"
        (Staged.stage (fun () ->
             Projection.project_exn ~check:false fig1_schema ~view:"b"
               ~source:(ty "Employee") ~projection:Fig1.projection ()));
      Test.make ~name:"E3/isapplicable-fig3"
        (Staged.stage (fun () ->
             Applicability.analyze_exn fig3_schema ~source:(ty "A")
               ~projection:Fig3.projection));
      Test.make ~name:"E4/factorstate-fig3"
        (Staged.stage (fun () ->
             Factor_state.run_exn (Schema.hierarchy fig3_schema) ~view:"b"
               ~source:(ty "A") ~projection:Fig3.projection ()));
      Test.make ~name:"E5-E6/pipeline-fig3-with-z"
        (Staged.stage (fun () ->
             Projection.project_exn ~check:false Fig3.schema_with_z ~view:"b"
               ~source:(ty "A") ~projection:Fig3.projection ()));
      Test.make ~name:"E7/invariant-check-fig3"
        (Staged.stage (fun () ->
             Invariants.check_exn ~before:fig3_projected.before
               ~after:fig3_projected.schema ~derived:fig3_projected.derived
               ~source:(ty "A") ~projection:Fig3.projection
               ~analysis:fig3_projected.analysis));
      Test.make ~name:"S1/isapplicable-synth-160"
        (Staged.stage (fun () ->
             Applicability.analyze_exn synth160 ~source:synth_src
               ~projection:synth_proj));
      Test.make ~name:"S2/factorstate-chain-32"
        (Staged.stage (fun () ->
             Factor_state.run_exn (Schema.hierarchy chain32) ~view:"b"
               ~source:chain_src ~projection:chain_proj ()));
      Test.make ~name:"S3/dispatch-refactored"
        (Staged.stage (fun () ->
             Dispatch.most_specific d_after ~gf:"u" ~arg_types:[ ty "A_hat" ]));
      Test.make ~name:"S4/collapse-4-views"
        (Staged.stage (fun () ->
             let schema, protect = collapse_input in
             Tdp_algebra.Optimize.collapse_exn ~protect schema));
      Test.make ~name:"S5/pipeline-fig3z-checked"
        (Staged.stage (fun () ->
             Projection.project_exn ~check:true Fig3.schema_with_z ~view:"b"
               ~source:(ty "A") ~projection:Fig3.projection ()));
      Test.make ~name:"ops/matview-refresh-steady"
        (Staged.stage
           (let o = Fig1.project () in
            let db = Tdp_store.Database.create o.schema in
            List.iter
              (fun i ->
                ignore
                  (Tdp_store.Database.new_object db (ty "Employee")
                     ~init:
                       [ (at "ssn", Tdp_store.Value.Int i);
                         (at "date_of_birth", Tdp_store.Value.Date (1950 + (i mod 60)));
                         (at "pay_rate", Tdp_store.Value.Float 10.0);
                         (at "hrs_worked", Tdp_store.Value.Float 1.0)
                       ]))
              (List.init 100 (fun i -> i));
            let mv =
              Tdp_algebra.Matview.create db ~view_type:(ty "Employee_hat")
                (Tdp_algebra.View.Project
                   (Tdp_algebra.View.Base (ty "Employee"), Fig1.projection))
            in
            fun () -> Tdp_algebra.Matview.refresh db mv));
      Test.make ~name:"ops/catalog-define-drop"
        (Staged.stage (fun () ->
             let c = Tdp_algebra.Catalog.create Fig1.schema in
             let c, _ =
               Tdp_algebra.Catalog.define_exn c ~name:"B"
                 (Tdp_algebra.View.Project
                    (Tdp_algebra.View.Base (ty "Employee"), Fig1.projection))
             in
             Tdp_algebra.Catalog.drop_exn c ~name:"B"))
    ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns/run, OLS on monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (bechamel_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Fmt.str "%12.1f ns/run" e
        | Some _ | None -> "(no estimate)"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Fmt.str "r²=%.4f" r
        | None -> ""
      in
      row3 name est r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Bench-regression gate (CI smoke): re-measure in --small mode and    *)
(* compare the guarded benchmarks against a checked-in baseline JSON.  *)
(* ------------------------------------------------------------------ *)

(* Benchmarks whose regression fails the gate.  The 3x tolerance is
   deliberately loose: CI machines are noisy, and the gate exists to
   catch order-of-magnitude losses (an accidentally quadratic path, a
   dropped memo table), not single-digit drift. *)
let guarded_benchmarks =
  [ "dispatch/applicable/cached";
    "subtype/index";
    "infer/pipeline";
    "infer/admits";
    "store/snapshot-load";
    "store/wal-replay";
    (* MVCC commit path: absent from pre-PR-7 baselines, so checks
       against those skip them (the gate's missing-entry rule) *)
    "txn/commit/serial";
    "txn/commit/concurrent-8";
    (* disabled-instrumentation gates: these must stay within noise of
       a bare call; entries absent from older baselines are skipped *)
    "obs/time/disabled";
    "obs/with_span/disabled";
    (* columnar extent engine: absent from pre-PR-8 baselines, so
       checks against those skip them *)
    "store/extent/columnar/n=1000";
    "scan/pred/columnar/n=1000";
    "matview/refresh-steady/n=1000";
    (* replication: catch-up rate per shipped record and one routed
       extent fan-out over two live shards; absent from pre-PR-9
       baselines *)
    "replica/lag";
    "router/extent";
    (* statement-language eval path (repl / Session / server eval);
       absent from pre-PR-10 baselines *)
    "repl/eval/typecheck";
    "repl/eval/extent-row"
  ]
let check_tolerance = 3.0

(* Absolute floors the current tree must hold regardless of baseline:
   the columnar engine's reason to exist is these wins, so losing them
   is a gate failure even when no guarded entry regressed.  Keyed on
   the speedup records of the current --small report (both modes
   measure the 100k point). *)
let required_speedups =
  [ ("store/extent/columnar-vs-map", 10.0); ("scan/pred/columnar-vs-map", 10.0) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pull a float field for a named entry out of a report.  The report
   format is ours (json_report above), so a string scan beats hauling
   in a JSON parser the container may not have: find the name, then
   the next occurrence of the field after it. *)
let float_field_of ~json ~field name =
  let needle = Fmt.str "\"name\": %S" name in
  let nlen = String.length needle and len = String.length json in
  let rec find i =
    if i + nlen > len then None
    else if String.sub json i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  Option.bind (find 0) (fun start ->
      let field = Fmt.str "\"%s\": " field in
      let flen = String.length field in
      let rec find_field i =
        if i + flen > len then None
        else if String.sub json i flen = field then Some (i + flen)
        else find_field (i + 1)
      in
      Option.bind (find_field start) (fun v ->
          let stop = ref v in
          while
            !stop < len
            && (match json.[!stop] with '0' .. '9' | '.' | '-' -> true | _ -> false)
          do
            incr stop
          done;
          float_of_string_opt (String.sub json v (!stop - v))))

let ns_per_op_of ~json name = float_field_of ~json ~field:"ns_per_op" name
let speedup_of ~json name = float_field_of ~json ~field:"speedup" name

let run_check ~baseline_file =
  let baseline = read_file baseline_file in
  Fmt.pr "measuring current tree (--small) against %s@." baseline_file;
  let current = json_report ~small:true in
  let failures =
    List.filter_map
      (fun name ->
        match (ns_per_op_of ~json:baseline name, ns_per_op_of ~json:current name) with
        | None, _ ->
            Fmt.pr "  %-32s not in baseline; skipped@." name;
            None
        | _, None -> Some (Fmt.str "%s: missing from current report" name)
        | Some base, Some cur ->
            let ratio = cur /. base in
            Fmt.pr "  %-32s baseline %10.1f ns  current %10.1f ns  (%.2fx)@." name
              base cur ratio;
            if ratio > check_tolerance then
              Some
                (Fmt.str "%s regressed %.2fx (tolerance %.1fx)" name ratio
                   check_tolerance)
            else None)
      guarded_benchmarks
  in
  let floor_failures =
    List.filter_map
      (fun (name, floor) ->
        match speedup_of ~json:current name with
        | None -> Some (Fmt.str "%s: missing from current report" name)
        | Some s ->
            Fmt.pr "  %-32s speedup %8.1fx  (floor %.1fx)@." name s floor;
            if s < floor then
              Some (Fmt.str "%s: %.1fx below required %.1fx" name s floor)
            else None)
      required_speedups
  in
  match failures @ floor_failures with
  | [] ->
      Fmt.pr "bench check OK@.";
      exit 0
  | fs ->
      List.iter (fun f -> Fmt.pr "FAIL: %s@." f) fs;
      exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let is_flag a = String.length a >= 2 && String.sub a 0 2 = "--" in
  let mode =
    match List.find_opt (fun a -> not (is_flag a)) args with
    | Some m -> m
    | None -> "all"
  in
  let rec out_of = function
    | "--out" :: v :: _ -> v
    | _ :: rest -> out_of rest
    | [] -> "BENCH_10.json"
  in
  let rec check_of = function
    | "--check" :: v :: _ -> Some v
    | _ :: rest -> check_of rest
    | [] -> None
  in
  (match check_of args with
  | Some baseline_file -> run_check ~baseline_file
  | None -> ());
  if List.mem "--json" args then begin
    run_json ~small:(List.mem "--small" args) ~out:(out_of args);
    exit 0
  end;
  if mode = "all" || mode = "tables" then begin
    table_e1_e2 ();
    table_e3 ();
    table_e4 ();
    table_e5 ();
    table_e6 ();
    table_e7 ();
    table_s1 ();
    table_s2 ();
    table_s3 ();
    table_s4 ();
    table_s5 ();
    table_s6 ();
    table_s7 ();
    table_s8 ();
    table_s9 ();
    table_s10 ();
    table_s11 ()
  end;
  if mode = "all" || mode = "bench" then run_bechamel ();
  Fmt.pr "@.done.@."
